#include "util/atomic_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fs = std::filesystem;

namespace efficsense {

namespace {

void create_parent_dirs(const std::string& path) {
  const auto parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    fs::create_directories(parent, ec);
  }
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw Error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

AppendFile::AppendFile(const std::string& path) : path_(path) {
  create_parent_dirs(path);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("cannot open append file", path);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendFile::append_line(const std::string& line) {
  EFF_REQUIRE(fd_ >= 0, "append file is closed: " + path_);
  std::string buf = line;
  buf.push_back('\n');
  const char* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("short write to", path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) throw_errno("fsync failed on", path_);
}

void truncate_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    throw_errno("cannot truncate", path);
  }
}

void atomic_write_file(const std::string& path, const std::string& content) {
  create_parent_dirs(path);
  const std::string tmp = path + ".tmp";
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) throw_errno("cannot open temp file", tmp);
    const char* p = content.data();
    std::size_t left = content.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw_errno("short write to", tmp);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced) throw_errno("fsync failed on", tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error("cannot rename " + tmp + " over " + path + ": " + ec.message());
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream blob;
  blob << in.rdbuf();
  return blob.str();
}

}  // namespace efficsense
