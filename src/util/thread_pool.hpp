#pragma once
// Fixed-size thread pool used by the sweep engine. Design points are
// embarrassingly parallel (each carries its own RNG stream), so the sweeper
// just maps an index range over the pool.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace efficsense {

class ThreadPool {
 public:
  /// n == 0 selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool and wait for completion.
  /// Exceptions from tasks are captured; the first one is rethrown here.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace efficsense
