#pragma once
// Fixed-size thread pool used by the sweep engine. Design points are
// embarrassingly parallel (each carries its own RNG stream), so the sweeper
// just maps an index range over the pool.
//
// The pool keeps its own lock-free execution statistics (queue depth, busy
// workers, per-worker task counts and busy time). util/ sits below obs/ in
// the layering, so callers that want these in the metrics registry mirror
// them into gauges — core::Sweeper::run does.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace efficsense {

class ThreadPool {
 public:
  /// n == 0 selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool and wait for completion.
  /// Exceptions from tasks are captured; the first one is rethrown here.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Point-in-time execution statistics (all counters are cumulative).
  struct Stats {
    std::size_t queue_depth = 0;   ///< tasks waiting for a worker
    std::size_t busy_workers = 0;  ///< workers currently inside a task
    std::uint64_t tasks_completed = 0;
    std::vector<std::uint64_t> worker_tasks;  ///< per-worker completed tasks
    std::vector<double> worker_busy_s;        ///< per-worker time inside tasks
    /// Mean fraction of workers busy, weighted by busy time vs wall time
    /// since construction. 1.0 = perfectly utilized.
    double utilization(double wall_s) const;
  };
  Stats stats() const;
  std::size_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  std::size_t busy_workers() const {
    return busy_workers_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::size_t worker_index);

  struct WorkerStats {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> busy_workers_{0};
  std::atomic<std::uint64_t> tasks_completed_{0};
};

}  // namespace efficsense
