#pragma once
// Environment-variable knobs. The figure benches default to a scale that
// finishes quickly on a small machine; these knobs restore paper scale.

#include <cstdint>
#include <string>

namespace efficsense {

/// Read an integer env var, falling back to `fallback` when unset/invalid.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Read a floating-point env var.
double env_double(const std::string& name, double fallback);

/// Read a boolean env var (accepts 1/0, true/false, yes/no).
bool env_bool(const std::string& name, bool fallback);

/// Read a string env var (fallback when unset; empty values count as set).
std::string env_string(const std::string& name, const std::string& fallback);

}  // namespace efficsense
