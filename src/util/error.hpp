#pragma once
// Error handling primitives shared by all efficsense modules.

#include <stdexcept>
#include <string>

namespace efficsense {

/// Base exception for all errors raised by the framework. Conditions that
/// indicate misuse of the API (bad dimensions, unknown parameter names,
/// unsatisfiable configurations) throw this rather than asserting, so that
/// sweeps can skip infeasible design points gracefully.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Precondition check that survives release builds.
#define EFF_REQUIRE(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::efficsense::Error(std::string("requirement failed: ") + \
                                (msg) + " [" #cond "]");              \
    }                                                                 \
  } while (false)

}  // namespace efficsense
