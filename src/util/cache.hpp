#pragma once
// A tiny content-addressed file cache. The figure benches (Fig. 7-10) share
// one parameter sweep, exactly as the paper derives all four figures from a
// single search-space evaluation; the first bench to run stores the results
// and the rest reuse them.

#include <cstdint>
#include <optional>
#include <string>

namespace efficsense {

/// FNV-1a 64-bit hash, used to turn a config description into a cache key.
std::uint64_t fnv1a(const std::string& data);

class FileCache {
 public:
  /// `dir` is created on first store if missing.
  explicit FileCache(std::string dir);

  /// Look up the blob stored under `key` (any descriptive string).
  std::optional<std::string> load(const std::string& key) const;

  /// Store `blob` under `key` (atomic rename, safe against partial writes).
  void store(const std::string& key, const std::string& blob) const;

  /// Remove an entry if present.
  void erase(const std::string& key) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(const std::string& key) const;
  std::string dir_;
};

/// Default cache location shared by the benches (repo-local `.cache/`).
FileCache default_cache();

}  // namespace efficsense
