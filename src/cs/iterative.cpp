#include "cs/iterative.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace efficsense::cs {

namespace {

/// Largest singular value of D, estimated with a few power iterations on
/// D^T D. Sets the gradient step 1/sigma_max^2 — the Frobenius bound is far
/// too conservative for the wide dictionaries used here.
double spectral_norm(const linalg::Matrix& d) {
  linalg::Vector v(d.cols(), 1.0);
  double norm = 0.0;
  for (int iter = 0; iter < 30; ++iter) {
    const auto dv = linalg::matvec(d, v);
    auto dtdv = linalg::matvec_transposed(d, dv);
    norm = linalg::norm2(dtdv);
    if (norm == 0.0) break;
    for (auto& x : dtdv) x /= norm;
    v = std::move(dtdv);
  }
  return std::sqrt(norm);
}

double default_step(const linalg::Matrix& d) {
  const double sigma = spectral_norm(d);
  EFF_REQUIRE(sigma > 0.0, "zero dictionary");
  // Slightly below 1/sigma_max^2 for guaranteed descent.
  return 0.95 / (sigma * sigma);
}

void hard_threshold(linalg::Vector& x, std::size_t k) {
  if (k >= x.size()) return;
  std::vector<double> mags(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) mags[i] = std::fabs(x[i]);
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k),
                   mags.end(), std::greater<double>());
  const double threshold = mags[k];
  for (double& v : x) {
    if (std::fabs(v) <= threshold) v = 0.0;
  }
}

}  // namespace

linalg::Vector iht_solve(const linalg::Matrix& d, const linalg::Vector& y,
                         IhtOptions options) {
  EFF_REQUIRE(d.rows() == y.size(), "measurement vector has wrong size");
  if (options.sparsity == 0) {
    options.sparsity = std::max<std::size_t>(1, d.rows() / 4);
  }
  const double mu = options.step > 0.0 ? options.step : default_step(d);

  linalg::Vector x(d.cols(), 0.0);
  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    const linalg::Vector dx = linalg::matvec(d, x);
    const linalg::Vector r = linalg::vsub(y, dx);
    const linalg::Vector grad = linalg::matvec_transposed(d, r);
    double change = 0.0, scale = 0.0;
    linalg::Vector x_new = x;
    for (std::size_t i = 0; i < x_new.size(); ++i) x_new[i] += mu * grad[i];
    hard_threshold(x_new, options.sparsity);
    for (std::size_t i = 0; i < x.size(); ++i) {
      change += (x_new[i] - x[i]) * (x_new[i] - x[i]);
      scale += x_new[i] * x_new[i];
    }
    x = std::move(x_new);
    if (scale > 0.0 && std::sqrt(change) <= options.tol * std::sqrt(scale)) break;
  }
  return x;
}

linalg::Vector ista_solve(const linalg::Matrix& d, const linalg::Vector& y,
                          IstaOptions options) {
  EFF_REQUIRE(d.rows() == y.size(), "measurement vector has wrong size");
  const double mu = options.step > 0.0 ? options.step : default_step(d);
  double lambda = options.lambda;
  if (lambda <= 0.0) {
    const linalg::Vector dty = linalg::matvec_transposed(d, y);
    lambda = 0.05 * linalg::norm_inf(dty);
  }
  const double shrink = mu * lambda;

  linalg::Vector x(d.cols(), 0.0);
  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    const linalg::Vector dx = linalg::matvec(d, x);
    const linalg::Vector r = linalg::vsub(y, dx);
    const linalg::Vector grad = linalg::matvec_transposed(d, r);
    double change = 0.0, scale = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      double v = x[i] + mu * grad[i];
      // Soft threshold.
      if (v > shrink) {
        v -= shrink;
      } else if (v < -shrink) {
        v += shrink;
      } else {
        v = 0.0;
      }
      change += (v - x[i]) * (v - x[i]);
      scale += v * v;
      x[i] = v;
    }
    if (scale > 0.0 && std::sqrt(change) <= options.tol * std::sqrt(scale)) break;
  }
  return x;
}

}  // namespace efficsense::cs
