#pragma once
// Orthogonal Matching Pursuit with an incrementally updated Cholesky
// factorisation (O(M*K) per iteration for correlation, O(k^2) for the
// solve). The solver object precomputes per-dictionary state so that the
// per-frame cost during a sweep stays minimal.

#include <cstddef>

#include "linalg/matrix.hpp"

namespace efficsense::cs {

struct OmpOptions {
  std::size_t max_atoms = 0;      ///< 0 selects M/4 (a common heuristic)
  double residual_tol = 1e-4;     ///< stop when ||r|| <= tol * ||y||
};

struct OmpResult {
  linalg::Vector coefficients;    ///< sparse solution (size K)
  std::vector<std::size_t> support;
  double residual_norm = 0.0;
  std::size_t iterations = 0;
};

class OmpSolver {
 public:
  /// `dictionary` is M x K (measurements x atoms). Columns need not be
  /// normalized; atom selection divides by the precomputed column norms.
  explicit OmpSolver(linalg::Matrix dictionary, OmpOptions options = {});

  OmpResult solve(const linalg::Vector& y) const;

  std::size_t measurements() const { return dict_.rows(); }
  std::size_t atoms() const { return dict_.cols(); }

 private:
  linalg::Matrix dict_;       // M x K
  linalg::Matrix dict_t_;     // K x M (row access = atom access)
  linalg::Vector col_norm_;   // per-atom l2 norm
  OmpOptions options_;
};

/// One-shot convenience wrapper.
OmpResult omp_solve(const linalg::Matrix& dictionary, const linalg::Vector& y,
                    OmpOptions options = {});

}  // namespace efficsense::cs
