#pragma once
// Orthogonal Matching Pursuit with an incrementally updated Cholesky
// factorisation. Two selection engines share the support machinery:
//
//  - Batch (default): the Batch-OMP scheme of Rubinstein et al. — precompute
//    the Gram G = A^T A once per dictionary and alpha0 = A^T y once per
//    frame, then update atom correlations through G columns instead of
//    re-touching the residual. Per-iteration cost drops from O(M*K) to
//    O(K*k); the Gram is amortized over every frame solved against the same
//    dictionary (and, via core::ReconstructorCache, over Monte-Carlo
//    instances and sweep points sharing a design).
//  - Naive: explicit residual re-correlation each iteration. Kept as the
//    reference oracle the equivalence tests check Batch against.
//
// The solver emits obs counters (omp/solves, omp/gram_builds) and timing
// histograms (time/omp_solve, time/omp_gram_build) so sidecars show where
// reconstruction time goes.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace efficsense::cs {

enum class OmpMode {
  Batch,  ///< Gram-based correlation updates (fast path)
  Naive,  ///< explicit residual re-correlation (reference oracle)
};

struct OmpOptions {
  std::size_t max_atoms = 0;      ///< 0 selects M/4 (a common heuristic)
  double residual_tol = 1e-4;     ///< stop when ||r|| <= tol * ||y||
  OmpMode mode = OmpMode::Batch;
};

struct OmpResult {
  linalg::Vector coefficients;    ///< sparse solution (size K)
  std::vector<std::size_t> support;
  double residual_norm = 0.0;
  std::size_t iterations = 0;
};

class OmpSolver {
 public:
  /// `dictionary` is M x K (measurements x atoms). Columns need not be
  /// normalized; atom selection divides by the precomputed column norms.
  /// Only the transpose (and, in Batch mode, the Gram) is retained — atoms
  /// are read exclusively row-wise in the hot loops.
  explicit OmpSolver(linalg::Matrix dictionary, OmpOptions options = {});

  OmpResult solve(const linalg::Vector& y) const;

  /// Multi-RHS solve against the shared Gram: one frame from each of K
  /// Monte-Carlo lanes. The alpha0 = A^T y pass is fused across lanes (each
  /// atom row is streamed through the cache once for all right-hand sides);
  /// the support iterations then run per lane, so results[l] is bit-identical
  /// to solve(ys[l]).
  std::vector<OmpResult> solve_multi(
      const std::vector<linalg::Vector>& ys) const;

  std::size_t measurements() const { return m_; }
  std::size_t atoms() const { return dict_t_.rows(); }
  const OmpOptions& options() const { return options_; }

  /// Precomputed Gram A^T A (empty in Naive mode).
  const linalg::Matrix& gram_matrix() const { return gram_; }

 private:
  OmpResult solve_naive(const linalg::Vector& y) const;
  OmpResult solve_batch(const linalg::Vector& y) const;
  /// Batch-mode support iterations for a precomputed alpha0 = A^T y.
  /// `accel` (used by the multi-RHS lane path only) swaps the atom
  /// selection scan and the alpha-update axpys for AVX2 kernels with the
  /// exact scalar IEEE semantics — identical results, the single-RHS
  /// oracle path keeps its original code.
  OmpResult solve_batch_with_alpha0(const linalg::Vector& y,
                                    const linalg::Vector& alpha0,
                                    bool accel = false) const;
  /// ||y - A|_S c||, the same subtraction loop as the naive path, so both
  /// engines report bitwise-identical residuals for identical supports.
  double support_residual_norm(const linalg::Vector& y,
                               const std::vector<std::size_t>& support,
                               const linalg::Vector& coef) const;

  std::size_t m_ = 0;
  linalg::Matrix dict_t_;     // K x M (row access = atom access)
  linalg::Matrix gram_;       // K x K, Batch mode only
  linalg::Vector col_norm_;   // per-atom l2 norm
  OmpOptions options_;
};

/// One-shot convenience wrapper.
OmpResult omp_solve(const linalg::Matrix& dictionary, const linalg::Vector& y,
                    OmpOptions options = {});

}  // namespace efficsense::cs
