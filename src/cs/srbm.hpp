#pragma once
// s-Sparse Random Binary Matrices (s-SRBM), the sensing matrices of the
// paper's CS front-end (Sec. III): each column of the M x N matrix Phi has
// exactly `s` ones, so every input sample is accumulated onto exactly `s`
// partial sums. Rows are load-balanced so hold capacitors see a near-equal
// number of accumulations, which both matches hardware practice and keeps
// the charge-sharing decay uniform.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace efficsense::cs {

class SparseBinaryMatrix {
 public:
  /// Generate an s-SRBM with `rows` x `cols`, `s` ones per column.
  static SparseBinaryMatrix generate(std::size_t rows, std::size_t cols,
                                     std::size_t s, std::uint64_t seed);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t sparsity() const { return s_; }

  /// Row indices of the ones in column j (size s, strictly increasing).
  const std::vector<std::size_t>& column_support(std::size_t j) const;

  /// Number of ones in row i (accumulations per hold capacitor).
  std::size_t row_weight(std::size_t i) const;

  /// y = Phi * x (exact binary arithmetic, no analog effects).
  linalg::Vector apply(const linalg::Vector& x) const;

  /// Dense 0/1 matrix.
  linalg::Matrix to_dense() const;

  /// Row-index CSR form for the O(nnz) fast operators (encode, effective
  /// dictionary build). Built once at generation time.
  const linalg::SparseBinaryMatrix& csr() const { return csr_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t s_ = 0;
  std::vector<std::vector<std::size_t>> support_;  // per column
  std::vector<std::size_t> row_weight_;
  linalg::SparseBinaryMatrix csr_;
};

}  // namespace efficsense::cs
