#pragma once
// Iterative thresholding reconstruction algorithms, provided as baselines
// against OMP for the reconstruction-algorithm ablation bench:
//  * IHT  — iterative hard thresholding (keep the K largest coefficients),
//  * ISTA — iterative soft thresholding (l1 proximal gradient).

#include <cstddef>

#include "linalg/matrix.hpp"

namespace efficsense::cs {

struct IhtOptions {
  std::size_t sparsity = 0;   ///< K kept coefficients (0 selects M/4)
  std::size_t max_iters = 100;
  double step = 0.0;          ///< 0 selects 1 / ||D||_F^2 (safe upper bound)
  double tol = 1e-6;          ///< stop when the update is below tol*||x||
};

linalg::Vector iht_solve(const linalg::Matrix& dictionary,
                         const linalg::Vector& y, IhtOptions options = {});

struct IstaOptions {
  double lambda = 0.0;        ///< l1 weight (0 selects 0.05*||D^T y||_inf)
  std::size_t max_iters = 200;
  double step = 0.0;          ///< 0 selects 1 / ||D||_F^2
  double tol = 1e-6;
};

linalg::Vector ista_solve(const linalg::Matrix& dictionary,
                          const linalg::Vector& y, IstaOptions options = {});

}  // namespace efficsense::cs
