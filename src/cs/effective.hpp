#pragma once
// The *effective* sensing matrix of the passive charge-sharing encoder.
//
// Physically (paper Eq. 1), every share onto a hold capacitor attenuates the
// charge already stored there: a share realizes V <- a*x + b*V with
// a = C_s/(C_s+C_h) and b = C_h/(C_s+C_h). A hold capacitor that accumulates
// its r-th-from-last sample therefore weighs it by a*b^r instead of 1. The
// designer knows the nominal capacitor ratio, so reconstruction uses this
// effective matrix rather than the ideal binary Phi; the *random* part of
// the weights (mismatch, noise, leakage) stays uncompensated.

#include "cs/srbm.hpp"
#include "linalg/matrix.hpp"

namespace efficsense::cs {

struct ChargeSharingGains {
  double a = 0.0;  ///< new-sample weight   C_s / (C_s + C_h)
  double b = 0.0;  ///< retained weight     C_h / (C_s + C_h)
};

ChargeSharingGains charge_sharing_gains(double c_sample_f, double c_hold_f);

/// Dense M x N matrix of nominal charge-sharing weights: entry (i, j) is
/// a * b^(shares onto row i after sample j), zero where Phi is zero.
linalg::Matrix effective_matrix(const SparseBinaryMatrix& phi, double a,
                                double b);

/// The nonzero charge-sharing weights alone, in phi.csr() entry order: the
/// p-th entry of row i (ascending sample index) weighs a * b^(w_i - 1 - p).
/// Feeding these to the CSR operators gives O(nnz) encodes and an
/// O(nnz * K) effective-dictionary build, bitwise matching the dense path.
linalg::Vector effective_entry_weights(const SparseBinaryMatrix& phi, double a,
                                       double b);

/// A = Phi_eff * Psi computed sparsely in O(nnz * Psi.cols()) instead of the
/// dense O(M * N * Psi.cols()); identical to
/// matmul(effective_matrix(phi, a, b), psi).
linalg::Matrix effective_dictionary(const SparseBinaryMatrix& phi, double a,
                                    double b, const linalg::Matrix& psi);

/// Ideal binary matrix (for ablation: pretend the encoder were a perfect
/// digital MAC).
linalg::Matrix ideal_matrix(const SparseBinaryMatrix& phi);

}  // namespace efficsense::cs
