#include "cs/solver.hpp"

#include <algorithm>
#include <utility>

#include "cs/amp.hpp"
#include "cs/bsbl.hpp"
#include "cs/iterative.hpp"
#include "util/error.hpp"

namespace efficsense::cs {

std::vector<SparseSolution> PreparedSolver::solve_multi(
    const std::vector<linalg::Vector>& ys) const {
  std::vector<SparseSolution> out;
  out.reserve(ys.size());
  for (const linalg::Vector& y : ys) out.push_back(solve(y));
  return out;
}

namespace {

// -- omp ---------------------------------------------------------------------

SparseSolution from_omp(OmpResult res) {
  SparseSolution sol;
  sol.coefficients = std::move(res.coefficients);
  sol.support = std::move(res.support);
  sol.sparse = true;
  sol.residual_norm = res.residual_norm;
  sol.iterations = res.iterations;
  return sol;
}

class OmpPrepared final : public PreparedSolver {
 public:
  OmpPrepared(linalg::Matrix dictionary, const SolverOptions& options)
      : solver_(std::move(dictionary), omp_options(options)) {}

  SparseSolution solve(const linalg::Vector& y) const override {
    return from_omp(solver_.solve(y));
  }

  std::vector<SparseSolution> solve_multi(
      const std::vector<linalg::Vector>& ys) const override {
    std::vector<OmpResult> results = solver_.solve_multi(ys);
    std::vector<SparseSolution> out;
    out.reserve(results.size());
    for (OmpResult& res : results) out.push_back(from_omp(std::move(res)));
    return out;
  }

 private:
  static OmpOptions omp_options(const SolverOptions& options) {
    // Exactly the historical ReconstructorConfig -> OmpOptions mapping; the
    // auto sparsity M/3 is resolved by the caller (needs M) via sparsity==0.
    OmpOptions opts;
    opts.max_atoms = options.sparsity;
    opts.residual_tol = options.residual_tol;
    opts.mode = options.omp_mode;
    return opts;
  }

  OmpSolver solver_;
};

class OmpSolverEntry final : public SparseSolver {
 public:
  std::string id() const override { return "omp"; }
  std::string description() const override {
    return "orthogonal matching pursuit (Batch-OMP, precomputed Gram)";
  }
  std::shared_ptr<const PreparedSolver> prepare(
      linalg::Matrix dictionary, const SolverOptions& options) const override {
    SolverOptions resolved = options;
    if (resolved.sparsity == 0) {
      resolved.sparsity = std::max<std::size_t>(1, dictionary.rows() / 3);
    }
    return std::make_shared<OmpPrepared>(std::move(dictionary), resolved);
  }
};

// -- iht / ista --------------------------------------------------------------

class IhtPrepared final : public PreparedSolver {
 public:
  IhtPrepared(linalg::Matrix dictionary, const SolverOptions& options)
      : dictionary_(std::move(dictionary)) {
    options_.sparsity = options.sparsity;
    options_.max_iters = options.max_iters;
  }

  SparseSolution solve(const linalg::Vector& y) const override {
    SparseSolution sol;
    sol.coefficients = iht_solve(dictionary_, y, options_);
    return sol;
  }

 private:
  linalg::Matrix dictionary_;
  IhtOptions options_;
};

class IhtSolverEntry final : public SparseSolver {
 public:
  std::string id() const override { return "iht"; }
  std::string description() const override {
    return "iterative hard thresholding (keep-K gradient projection)";
  }
  std::shared_ptr<const PreparedSolver> prepare(
      linalg::Matrix dictionary, const SolverOptions& options) const override {
    return std::make_shared<IhtPrepared>(std::move(dictionary), options);
  }
};

class IstaPrepared final : public PreparedSolver {
 public:
  IstaPrepared(linalg::Matrix dictionary, const SolverOptions& options)
      : dictionary_(std::move(dictionary)) {
    options_.max_iters = options.max_iters;
  }

  SparseSolution solve(const linalg::Vector& y) const override {
    SparseSolution sol;
    sol.coefficients = ista_solve(dictionary_, y, options_);
    return sol;
  }

 private:
  linalg::Matrix dictionary_;
  IstaOptions options_;
};

class IstaSolverEntry final : public SparseSolver {
 public:
  std::string id() const override { return "ista"; }
  std::string description() const override {
    return "iterative soft thresholding (l1 proximal gradient)";
  }
  std::shared_ptr<const PreparedSolver> prepare(
      linalg::Matrix dictionary, const SolverOptions& options) const override {
    return std::make_shared<IstaPrepared>(std::move(dictionary), options);
  }
};

// -- bsbl --------------------------------------------------------------------

class BsblPrepared final : public PreparedSolver {
 public:
  BsblPrepared(linalg::Matrix dictionary, const SolverOptions& options)
      : dictionary_(std::move(dictionary)) {
    options_.max_iters = options.max_iters;
    options_.residual_tol = options.residual_tol;
  }

  SparseSolution solve(const linalg::Vector& y) const override {
    BsblResult res = bsbl_solve(dictionary_, y, options_);
    SparseSolution sol;
    sol.coefficients = std::move(res.coefficients);
    sol.residual_norm = res.residual_norm;
    sol.iterations = res.iterations;
    return sol;
  }

 private:
  linalg::Matrix dictionary_;
  BsblOptions options_;
};

class BsblSolverEntry final : public SparseSolver {
 public:
  std::string id() const override { return "bsbl"; }
  std::string description() const override {
    return "block-sparse Bayesian learning (BSBL-BO, 8-atom blocks)";
  }
  std::shared_ptr<const PreparedSolver> prepare(
      linalg::Matrix dictionary, const SolverOptions& options) const override {
    return std::make_shared<BsblPrepared>(std::move(dictionary), options);
  }
};

// -- amp ---------------------------------------------------------------------

class AmpPrepared final : public PreparedSolver {
 public:
  AmpPrepared(linalg::Matrix dictionary, const SolverOptions& options)
      : dictionary_(std::move(dictionary)) {
    options_.max_iters = options.max_iters;
    options_.residual_tol = options.residual_tol;
  }

  SparseSolution solve(const linalg::Vector& y) const override {
    AmpResult res = amp_solve(dictionary_, y, options_);
    SparseSolution sol;
    sol.coefficients = std::move(res.coefficients);
    sol.residual_norm = res.residual_norm;
    sol.iterations = res.iterations;
    return sol;
  }

 private:
  linalg::Matrix dictionary_;
  AmpOptions options_;
};

class AmpSolverEntry final : public SparseSolver {
 public:
  std::string id() const override { return "amp"; }
  std::string description() const override {
    return "approximate message passing (Onsager correction, damped)";
  }
  std::shared_ptr<const PreparedSolver> prepare(
      linalg::Matrix dictionary, const SolverOptions& options) const override {
    return std::make_shared<AmpPrepared>(std::move(dictionary), options);
  }
};

// -- compressed_domain -------------------------------------------------------

class CompressedDomainEntry final : public SparseSolver {
 public:
  std::string id() const override { return "compressed_domain"; }
  std::string description() const override {
    return "no reconstruction: detector runs directly on the measurements";
  }
  bool reconstructs() const override { return false; }
  std::shared_ptr<const PreparedSolver> prepare(
      linalg::Matrix, const SolverOptions&) const override {
    throw Error(
        "solver 'compressed_domain' does not reconstruct; route it to a "
        "measurement-domain decoder instead of a cs::Reconstructor");
  }
};

}  // namespace

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry;
  return registry;
}

SolverRegistry::SolverRegistry() {
  // Built-ins are registered here, not via static SolverRegistrar objects, so
  // linking the cs library as a static archive cannot dead-strip them. The
  // registration order fixes the numeric axis codes: omp=0, iht=1, ista=2
  // (matching the deprecated ReconAlgorithm enum), bsbl=3, amp=4,
  // compressed_domain=5.
  add(std::make_unique<OmpSolverEntry>());
  add(std::make_unique<IhtSolverEntry>());
  add(std::make_unique<IstaSolverEntry>());
  add(std::make_unique<BsblSolverEntry>());
  add(std::make_unique<AmpSolverEntry>());
  add(std::make_unique<CompressedDomainEntry>());
}

void SolverRegistry::add(std::unique_ptr<SparseSolver> solver) {
  EFF_REQUIRE(solver != nullptr, "cannot register a null solver");
  const std::string id = solver->id();
  EFF_REQUIRE(!id.empty(), "solver id must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto pos = std::lower_bound(
      solvers_.begin(), solvers_.end(), id,
      [](const std::unique_ptr<SparseSolver>& entry, const std::string& key) {
        return entry->id() < key;
      });
  if (pos != solvers_.end() && (*pos)->id() == id) {
    throw Error("solver '" + id + "' is already registered");
  }
  solvers_.insert(pos, std::move(solver));
  codes_.push_back(id);
}

const SparseSolver* SolverRegistry::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto pos = std::lower_bound(
      solvers_.begin(), solvers_.end(), id,
      [](const std::unique_ptr<SparseSolver>& entry, const std::string& key) {
        return entry->id() < key;
      });
  if (pos != solvers_.end() && (*pos)->id() == id) return pos->get();
  return nullptr;
}

const SparseSolver& SolverRegistry::get(const std::string& id) const {
  const SparseSolver* solver = find(id);
  if (solver == nullptr) {
    throw Error("unknown solver '" + id + "'; registered solvers: " +
                known_ids() + " (run_sweep --list-solvers prints details)");
  }
  return *solver;
}

int SolverRegistry::code_of(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < codes_.size(); ++i) {
    if (codes_[i] == id) return static_cast<int>(i);
  }
  std::string known;
  for (const auto& entry : solvers_) {
    if (!known.empty()) known += ", ";
    known += entry->id();
  }
  throw Error("unknown solver '" + id + "'; registered solvers: " + known +
              " (run_sweep --list-solvers prints details)");
}

std::string SolverRegistry::id_of_code(int code) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (code < 0 || static_cast<std::size_t>(code) >= codes_.size()) {
    std::string known;
    for (std::size_t i = 0; i < codes_.size(); ++i) {
      if (!known.empty()) known += ", ";
      known += codes_[i] + "=" + std::to_string(i);
    }
    throw Error("unknown solver code " + std::to_string(code) +
                "; registered codes: " + known);
  }
  return codes_[static_cast<std::size_t>(code)];
}

std::vector<const SparseSolver*> SolverRegistry::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const SparseSolver*> out;
  out.reserve(solvers_.size());
  for (const auto& entry : solvers_) out.push_back(entry.get());
  return out;
}

std::string SolverRegistry::known_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& entry : solvers_) {
    if (!out.empty()) out += ", ";
    out += entry->id();
  }
  return out;
}

SolverRegistrar::SolverRegistrar(std::unique_ptr<SparseSolver> solver) {
  SolverRegistry::instance().add(std::move(solver));
}

}  // namespace efficsense::cs
