#include "cs/srbm.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace efficsense::cs {

SparseBinaryMatrix SparseBinaryMatrix::generate(std::size_t rows,
                                                std::size_t cols,
                                                std::size_t s,
                                                std::uint64_t seed) {
  EFF_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  EFF_REQUIRE(s >= 1 && s <= rows, "sparsity must satisfy 1 <= s <= rows");

  SparseBinaryMatrix phi;
  phi.rows_ = rows;
  phi.cols_ = cols;
  phi.s_ = s;
  phi.support_.resize(cols);
  phi.row_weight_.assign(rows, 0);

  Rng rng(seed);

  // Load-balanced assignment: maintain a pool of row slots where each row
  // appears ceil(cols*s/rows) times, shuffle, and deal s distinct rows per
  // column (resolving rare collisions by re-drawing from the least-loaded
  // rows).
  const std::size_t total = cols * s;
  const std::size_t per_row = (total + rows - 1) / rows;
  std::vector<std::size_t> pool;
  pool.reserve(per_row * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < per_row; ++k) pool.push_back(r);
  }
  rng.shuffle(pool);

  std::size_t cursor = 0;
  for (std::size_t j = 0; j < cols; ++j) {
    auto& sup = phi.support_[j];
    sup.clear();
    while (sup.size() < s) {
      std::size_t row;
      if (cursor < pool.size()) {
        row = pool[cursor++];
      } else {
        row = static_cast<std::size_t>(rng.below(rows));
      }
      if (std::find(sup.begin(), sup.end(), row) != sup.end()) {
        // Collision within the column: draw a fresh random row instead.
        row = static_cast<std::size_t>(rng.below(rows));
        if (std::find(sup.begin(), sup.end(), row) != sup.end()) continue;
      }
      sup.push_back(row);
      ++phi.row_weight_[row];
    }
    std::sort(sup.begin(), sup.end());
  }
  phi.csr_ =
      linalg::SparseBinaryMatrix::from_column_supports(rows, cols, phi.support_);
  return phi;
}

const std::vector<std::size_t>& SparseBinaryMatrix::column_support(
    std::size_t j) const {
  EFF_REQUIRE(j < cols_, "column index out of range");
  return support_[j];
}

std::size_t SparseBinaryMatrix::row_weight(std::size_t i) const {
  EFF_REQUIRE(i < rows_, "row index out of range");
  return row_weight_[i];
}

linalg::Vector SparseBinaryMatrix::apply(const linalg::Vector& x) const {
  EFF_REQUIRE(x.size() == cols_, "input vector has wrong size");
  // Each row gathers its column entries in ascending order — the same term
  // order the old column-major scatter produced — via the CSR form.
  return csr_.apply(x);
}

linalg::Matrix SparseBinaryMatrix::to_dense() const { return csr_.to_dense(); }

}  // namespace efficsense::cs
