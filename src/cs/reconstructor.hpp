#pragma once
// Frame-wise CS reconstruction facade: binds a sensing matrix (with its
// nominal charge-sharing weights), a sparsifying basis and a recovery
// solver, and turns measurement streams back into signal estimates.
//
// The dictionary A = Phi_eff * Psi is assembled through the CSR form of the
// s-SRBM in O(nnz * K) rather than the dense O(M * N * K), then handed to
// the registered solver's prepare() so per-dictionary state (OMP's Gram,
// AMP's column normalization) is built exactly once per Reconstructor.
// Solvers come from cs::SolverRegistry — see cs/solver.hpp for the
// registered ids and the registration contract.

#include <cstddef>
#include <memory>
#include <string>

#include "cs/effective.hpp"
#include "cs/solver.hpp"
#include "cs/srbm.hpp"
#include "linalg/matrix.hpp"

namespace efficsense {
class ThreadPool;
}

namespace efficsense::cs {

/// Deprecated compat shim over the SolverRegistry ids: kept so existing
/// configs keep compiling, mapped to "omp"/"iht"/"ista" by solver_id().
/// New code (and everything sweepable) uses ReconstructorConfig::solver.
enum class ReconAlgorithm { Omp, Iht, Ista };
enum class BasisKind { Dct, Db4 };

/// Registry id behind a legacy enum value.
std::string recon_algorithm_id(ReconAlgorithm algorithm);

struct ReconstructorConfig {
  /// Registry id of the recovery solver ("omp", "iht", "ista", "bsbl",
  /// "amp", "compressed_domain", ...). Empty falls back to the deprecated
  /// `algorithm` enum below; solver_id() resolves the effective id.
  std::string solver;
  /// Deprecated: pre-registry algorithm selector, honoured only while
  /// `solver` is empty.
  ReconAlgorithm algorithm = ReconAlgorithm::Omp;
  /// Sparsifying basis: DCT (default) or Daubechies-4 wavelets. Both order
  /// atoms smooth-first, so the basis_atoms truncation applies equally.
  BasisKind basis = BasisKind::Dct;
  std::size_t sparsity = 0;     ///< atoms for OMP / K for IHT (0 = M/3)
  double residual_tol = 1e-3;   ///< OMP/BSBL/AMP stopping criterion
  std::size_t max_iters = 100;  ///< iterative-solver iteration cap
  /// Dictionary truncation: keep only the first `basis_atoms` DCT atoms
  /// (EEG energy lives below ~45 Hz, so high-frequency atoms only let the
  /// solver fit noise). 0 selects the automatic choice 0.85 * M. Set to
  /// N_Phi for the full, untruncated dictionary (ablation knob).
  std::size_t basis_atoms = 0;
  /// If false, reconstruct with the ideal binary Phi instead of the
  /// charge-sharing-aware effective matrix (ablation knob).
  bool compensate_decay = true;
  /// OMP selection engine; Naive is the reference oracle for tests.
  OmpMode omp_mode = OmpMode::Batch;

  /// Effective registry id: `solver` when set, else the legacy enum mapping.
  std::string solver_id() const {
    return solver.empty() ? recon_algorithm_id(algorithm) : solver;
  }
};

class Reconstructor {
 public:
  /// `gains` carries the nominal a/b of the charge-sharing encoder. Pass
  /// {1.0, 0.0} when the measurements come from an ideal digital MAC.
  /// Throws Error for unknown solver ids and for registered solvers that do
  /// not reconstruct (compressed_domain routes around this class entirely).
  Reconstructor(const SparseBinaryMatrix& phi, ChargeSharingGains gains,
                ReconstructorConfig config = {});

  std::size_t frame_length() const { return n_; }
  std::size_t measurements_per_frame() const { return m_; }

  /// Recover one frame (y of size M) -> time-domain estimate of size N_Phi.
  linalg::Vector reconstruct_frame(const linalg::Vector& y) const;

  /// Recover a stream: measurements are consumed M at a time; a trailing
  /// partial frame is ignored. Output size = full_frames * N_Phi. Frames are
  /// independent, so a thread pool (optional) fans them out; results are
  /// written into place and identical to the serial order.
  std::vector<double> reconstruct_stream(
      const std::vector<double>& measurements,
      ThreadPool* pool = nullptr) const;

  /// K-lane batched recovery for the SoA Monte-Carlo engine: lanes[l]
  /// points at lane l's measurement stream (`length` values each, e.g. a
  /// LaneBank row). Per frame window one multi-RHS solve runs across all
  /// lanes (fused against the shared Gram for OMP, the scalar per-lane
  /// fallback otherwise); out[l] is bit-identical to reconstruct_stream
  /// over lane l alone.
  std::vector<std::vector<double>> reconstruct_stream_multi(
      const std::vector<const double*>& lanes, std::size_t length,
      ThreadPool* pool = nullptr) const;

  /// Number of DCT atoms actually used after truncation.
  std::size_t active_atoms() const { return k_atoms_; }

 private:
  linalg::Vector synthesize(const SparseSolution& sol) const;
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  std::size_t k_atoms_ = 0;
  ReconstructorConfig config_;
  linalg::Matrix psi_t_;  // k_atoms x N synthesis transpose (row = atom)
  std::shared_ptr<const PreparedSolver> prepared_;
};

}  // namespace efficsense::cs
