#include "cs/omp.hpp"

#include <cmath>

#include "linalg/decompositions.hpp"
#include "util/error.hpp"

namespace efficsense::cs {

OmpSolver::OmpSolver(linalg::Matrix dictionary, OmpOptions options)
    : dict_(std::move(dictionary)),
      dict_t_(dict_.transposed()),
      options_(options) {
  EFF_REQUIRE(dict_.rows() > 0 && dict_.cols() > 0, "empty dictionary");
  col_norm_.resize(dict_.cols());
  for (std::size_t k = 0; k < dict_.cols(); ++k) {
    const double* atom = dict_t_.row_ptr(k);
    double sum = 0.0;
    for (std::size_t i = 0; i < dict_.rows(); ++i) sum += atom[i] * atom[i];
    col_norm_[k] = std::sqrt(sum);
  }
  if (options_.max_atoms == 0) {
    options_.max_atoms = std::max<std::size_t>(1, dict_.rows() / 4);
  }
  options_.max_atoms = std::min(options_.max_atoms, dict_.rows());
}

OmpResult OmpSolver::solve(const linalg::Vector& y) const {
  EFF_REQUIRE(y.size() == dict_.rows(), "measurement vector has wrong size");
  const std::size_t m = dict_.rows();
  const std::size_t k_atoms = dict_.cols();

  OmpResult out;
  out.coefficients.assign(k_atoms, 0.0);

  const double y_norm = linalg::norm2(y);
  if (y_norm == 0.0) return out;
  const double target = options_.residual_tol * y_norm;

  linalg::Vector residual = y;
  std::vector<bool> in_support(k_atoms, false);
  std::vector<std::size_t> support;
  support.reserve(options_.max_atoms);
  linalg::CholeskyAppend gram(options_.max_atoms);
  linalg::Vector dt_y;  // <atom_s, y> for s in support, in support order
  dt_y.reserve(options_.max_atoms);

  for (std::size_t iter = 0; iter < options_.max_atoms; ++iter) {
    // Atom selection: largest normalized correlation with the residual.
    std::size_t best = k_atoms;
    double best_score = 0.0;
    for (std::size_t k = 0; k < k_atoms; ++k) {
      if (in_support[k] || col_norm_[k] == 0.0) continue;
      const double* atom = dict_t_.row_ptr(k);
      double corr = 0.0;
      for (std::size_t i = 0; i < m; ++i) corr += atom[i] * residual[i];
      const double score = std::fabs(corr) / col_norm_[k];
      if (score > best_score) {
        best_score = score;
        best = k;
      }
    }
    if (best == k_atoms || best_score < 1e-15) break;

    // Gram cross terms against the current support.
    const double* new_atom = dict_t_.row_ptr(best);
    linalg::Vector cross(support.size());
    for (std::size_t si = 0; si < support.size(); ++si) {
      const double* s_atom = dict_t_.row_ptr(support[si]);
      double g = 0.0;
      for (std::size_t i = 0; i < m; ++i) g += s_atom[i] * new_atom[i];
      cross[si] = g;
    }
    if (!gram.append(cross, col_norm_[best] * col_norm_[best])) break;

    in_support[best] = true;
    support.push_back(best);
    double ay = 0.0;
    for (std::size_t i = 0; i < m; ++i) ay += new_atom[i] * y[i];
    dt_y.push_back(ay);

    // Least-squares coefficients on the support, then fresh residual.
    const linalg::Vector coef = gram.solve(dt_y);
    residual = y;
    for (std::size_t si = 0; si < support.size(); ++si) {
      const double* s_atom = dict_t_.row_ptr(support[si]);
      const double c = coef[si];
      for (std::size_t i = 0; i < m; ++i) residual[i] -= c * s_atom[i];
    }
    out.iterations = iter + 1;
    out.residual_norm = linalg::norm2(residual);
    if (out.residual_norm <= target) {
      for (std::size_t si = 0; si < support.size(); ++si) {
        out.coefficients[support[si]] = coef[si];
      }
      out.support = support;
      return out;
    }
    if (iter + 1 == options_.max_atoms) {
      for (std::size_t si = 0; si < support.size(); ++si) {
        out.coefficients[support[si]] = coef[si];
      }
    }
  }
  out.support = support;
  return out;
}

OmpResult omp_solve(const linalg::Matrix& dictionary, const linalg::Vector& y,
                    OmpOptions options) {
  return OmpSolver(dictionary, options).solve(y);
}

}  // namespace efficsense::cs
