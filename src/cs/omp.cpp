#include "cs/omp.hpp"

#include <chrono>
#include <cmath>

#include "linalg/decompositions.hpp"
#include "linalg/lane_kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace efficsense::cs {

namespace {
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}
}  // namespace

OmpSolver::OmpSolver(linalg::Matrix dictionary, OmpOptions options)
    : m_(dictionary.rows()), options_(options) {
  EFF_REQUIRE(dictionary.rows() > 0 && dictionary.cols() > 0,
              "empty dictionary");
  EFFICSENSE_SPAN("omp/setup");
  if (options_.mode == OmpMode::Batch) {
    const auto start = clock_type::now();
    gram_ = linalg::gram(dictionary);
    obs::counter("omp/gram_builds").inc();
    obs::histogram("time/omp_gram_build").observe(seconds_since(start));
  }
  dict_t_ = dictionary.transposed();
  dictionary = {};  // the dense M x K copy is never read again

  const std::size_t k_atoms = dict_t_.rows();
  col_norm_.resize(k_atoms);
  for (std::size_t k = 0; k < k_atoms; ++k) {
    const double* atom = dict_t_.row_ptr(k);
    double sum = 0.0;
    for (std::size_t i = 0; i < m_; ++i) sum += atom[i] * atom[i];
    col_norm_[k] = std::sqrt(sum);
  }
  if (options_.max_atoms == 0) {
    options_.max_atoms = std::max<std::size_t>(1, m_ / 4);
  }
  options_.max_atoms = std::min(options_.max_atoms, m_);
}

OmpResult OmpSolver::solve(const linalg::Vector& y) const {
  EFF_REQUIRE(y.size() == m_, "measurement vector has wrong size");
  EFFICSENSE_SPAN("omp/solve");
  const auto start = clock_type::now();
  OmpResult out =
      options_.mode == OmpMode::Batch ? solve_batch(y) : solve_naive(y);
  obs::counter("omp/solves").inc();
  obs::histogram("time/omp_solve").observe(seconds_since(start));
  return out;
}

std::vector<OmpResult> OmpSolver::solve_multi(
    const std::vector<linalg::Vector>& ys) const {
  std::vector<OmpResult> results(ys.size());
  if (ys.empty()) return results;
  for (const auto& y : ys) {
    EFF_REQUIRE(y.size() == m_, "measurement vector has wrong size");
  }
  EFFICSENSE_SPAN("omp/solve_multi");
  const auto start = clock_type::now();
  if (options_.mode == OmpMode::Batch) {
    // Fused correlation pass: the lane frames are transposed into a
    // sample-major SoA block so each atom row is streamed through the
    // cache once and dotted against every lane at once. dot_lanes keeps
    // the per-(atom, lane) i-accumulation in exact scalar order (SIMD
    // runs across lanes only), so alpha0 — and everything downstream —
    // matches the single-RHS path bitwise.
    const auto alpha_start = clock_type::now();
    const std::size_t k_atoms = dict_t_.rows();
    const std::size_t n_lanes = ys.size();
    std::vector<double> yt(m_ * n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
      const double* y = ys[l].data();
      for (std::size_t i = 0; i < m_; ++i) yt[i * n_lanes + l] = y[i];
    }
    std::vector<linalg::Vector> alpha0(n_lanes, linalg::Vector(k_atoms, 0.0));
    std::vector<double> sums(n_lanes);
    for (std::size_t k = 0; k < k_atoms; ++k) {
      linalg::dot_lanes(dict_t_.row_ptr(k), yt.data(), m_, n_lanes,
                        sums.data());
      for (std::size_t l = 0; l < n_lanes; ++l) alpha0[l][k] = sums[l];
    }
    obs::histogram("time/omp_alpha0").observe(seconds_since(alpha_start));
    for (std::size_t l = 0; l < ys.size(); ++l) {
      results[l] = solve_batch_with_alpha0(ys[l], alpha0[l], /*accel=*/true);
    }
  } else {
    for (std::size_t l = 0; l < ys.size(); ++l) {
      results[l] = solve_naive(ys[l]);
    }
  }
  obs::counter("omp/solves").inc(ys.size());
  obs::counter("omp/multi_solves").inc();
  obs::histogram("time/omp_solve").observe(seconds_since(start));
  return results;
}

double OmpSolver::support_residual_norm(
    const linalg::Vector& y, const std::vector<std::size_t>& support,
    const linalg::Vector& coef) const {
  linalg::Vector residual = y;
  for (std::size_t si = 0; si < support.size(); ++si) {
    const double* s_atom = dict_t_.row_ptr(support[si]);
    const double c = coef[si];
    for (std::size_t i = 0; i < m_; ++i) residual[i] -= c * s_atom[i];
  }
  return linalg::norm2(residual);
}

OmpResult OmpSolver::solve_naive(const linalg::Vector& y) const {
  const std::size_t k_atoms = dict_t_.rows();

  OmpResult out;
  out.coefficients.assign(k_atoms, 0.0);

  const double y_norm = linalg::norm2(y);
  if (y_norm == 0.0) return out;
  const double target = options_.residual_tol * y_norm;
  out.residual_norm = y_norm;  // the residual starts at y

  linalg::Vector residual = y;
  std::vector<bool> in_support(k_atoms, false);
  std::vector<std::size_t> support;
  support.reserve(options_.max_atoms);
  linalg::CholeskyAppend chol(options_.max_atoms);
  linalg::Vector dt_y;  // <atom_s, y> for s in support, in support order
  dt_y.reserve(options_.max_atoms);
  linalg::Vector coef;

  for (std::size_t iter = 0; iter < options_.max_atoms; ++iter) {
    // Atom selection: largest normalized correlation with the residual.
    std::size_t best = k_atoms;
    double best_score = 0.0;
    for (std::size_t k = 0; k < k_atoms; ++k) {
      if (in_support[k] || col_norm_[k] == 0.0) continue;
      const double* atom = dict_t_.row_ptr(k);
      double corr = 0.0;
      for (std::size_t i = 0; i < m_; ++i) corr += atom[i] * residual[i];
      const double score = std::fabs(corr) / col_norm_[k];
      if (score > best_score) {
        best_score = score;
        best = k;
      }
    }
    if (best == k_atoms || best_score < 1e-15) break;

    // Gram cross terms against the current support.
    const double* new_atom = dict_t_.row_ptr(best);
    linalg::Vector cross(support.size());
    for (std::size_t si = 0; si < support.size(); ++si) {
      const double* s_atom = dict_t_.row_ptr(support[si]);
      double g = 0.0;
      for (std::size_t i = 0; i < m_; ++i) g += s_atom[i] * new_atom[i];
      cross[si] = g;
    }
    if (!chol.append(cross, col_norm_[best] * col_norm_[best])) break;

    in_support[best] = true;
    support.push_back(best);
    double ay = 0.0;
    for (std::size_t i = 0; i < m_; ++i) ay += new_atom[i] * y[i];
    dt_y.push_back(ay);

    // Least-squares coefficients on the support, then fresh residual.
    coef = chol.solve(dt_y);
    residual = y;
    for (std::size_t si = 0; si < support.size(); ++si) {
      const double* s_atom = dict_t_.row_ptr(support[si]);
      const double c = coef[si];
      for (std::size_t i = 0; i < m_; ++i) residual[i] -= c * s_atom[i];
    }
    out.iterations = iter + 1;
    out.residual_norm = linalg::norm2(residual);
    if (out.residual_norm <= target) break;
  }

  for (std::size_t si = 0; si < support.size(); ++si) {
    out.coefficients[support[si]] = coef[si];
  }
  out.support = std::move(support);
  return out;
}

OmpResult OmpSolver::solve_batch(const linalg::Vector& y) const {
  const std::size_t k_atoms = dict_t_.rows();
  // alpha0 = A^T y, once per frame; alpha tracks A^T r through the Gram.
  linalg::Vector alpha0(k_atoms);
  for (std::size_t k = 0; k < k_atoms; ++k) {
    const double* atom = dict_t_.row_ptr(k);
    double sum = 0.0;
    for (std::size_t i = 0; i < m_; ++i) sum += atom[i] * y[i];
    alpha0[k] = sum;
  }
  return solve_batch_with_alpha0(y, alpha0);
}

OmpResult OmpSolver::solve_batch_with_alpha0(const linalg::Vector& y,
                                             const linalg::Vector& alpha0,
                                             bool accel) const {
  const std::size_t k_atoms = dict_t_.rows();

  OmpResult out;
  out.coefficients.assign(k_atoms, 0.0);

  const double y_sq = linalg::dot(y, y);
  const double y_norm = std::sqrt(y_sq);
  if (y_norm == 0.0) return out;
  const double target = options_.residual_tol * y_norm;
  // The Gram recurrence for ||r||^2 carries absolute error ~eps*||y||^2, so
  // residual estimates below ~1e-6*||y|| are numerically meaningless. Once
  // the estimate enters this band the stopping decision falls back to an
  // exact O(k*M) residual, keeping tiny tolerances as sharp as the naive
  // path without paying the exact recompute on every iteration.
  const double verify_band = std::max(target, 1e-6 * y_norm);

  linalg::Vector alpha = alpha0;

  std::vector<bool> in_support(k_atoms, false);
  // Lane-path mask for the AVX2 selection kernel: 0.0 = skip (atom already
  // in support or zero-norm), mirroring the scalar continue condition.
  std::vector<double> live;
  if (accel) {
    live.resize(k_atoms);
    for (std::size_t k = 0; k < k_atoms; ++k) {
      live[k] = col_norm_[k] == 0.0 ? 0.0 : 1.0;
    }
  }
  std::vector<std::size_t> support;
  support.reserve(options_.max_atoms);
  linalg::CholeskyAppend chol(options_.max_atoms);
  linalg::Vector dt_y;
  dt_y.reserve(options_.max_atoms);
  linalg::Vector coef;

  for (std::size_t iter = 0; iter < options_.max_atoms; ++iter) {
    std::size_t best = k_atoms;
    double best_score = 0.0;
    if (accel) {
      best = linalg::select_atom(alpha.data(), col_norm_.data(), live.data(),
                                 k_atoms, &best_score);
    } else {
      for (std::size_t k = 0; k < k_atoms; ++k) {
        if (in_support[k] || col_norm_[k] == 0.0) continue;
        const double score = std::fabs(alpha[k]) / col_norm_[k];
        if (score > best_score) {
          best_score = score;
          best = k;
        }
      }
    }
    if (best == k_atoms || best_score < 1e-15) break;

    // Cross terms come straight out of the precomputed Gram; the row read is
    // contiguous because G is symmetric.
    const double* gbest = gram_.row_ptr(best);
    linalg::Vector cross(support.size());
    for (std::size_t si = 0; si < support.size(); ++si) {
      cross[si] = gbest[support[si]];
    }
    if (!chol.append(cross, col_norm_[best] * col_norm_[best])) break;

    in_support[best] = true;
    if (accel) live[best] = 0.0;
    support.push_back(best);
    dt_y.push_back(alpha0[best]);
    coef = chol.solve(dt_y);
    out.iterations = iter + 1;

    // ||r||^2 = ||y||^2 - (A^T y)|_S . c, exact in exact arithmetic.
    double res_sq = y_sq;
    for (std::size_t si = 0; si < support.size(); ++si) {
      res_sq -= dt_y[si] * coef[si];
    }
    double res = std::sqrt(std::max(0.0, res_sq));
    if (res <= verify_band) res = support_residual_norm(y, support, coef);
    if (res <= target) break;

    if (iter + 1 < options_.max_atoms) {
      // alpha = alpha0 - G[:, S] c; columns read as rows by symmetry.
      alpha = alpha0;
      if (accel) {
        for (std::size_t si = 0; si < support.size(); ++si) {
          linalg::sub_scaled(alpha.data(), gram_.row_ptr(support[si]),
                             coef[si], k_atoms);
        }
      } else {
        for (std::size_t si = 0; si < support.size(); ++si) {
          const double c = coef[si];
          const double* grow = gram_.row_ptr(support[si]);
          for (std::size_t k = 0; k < k_atoms; ++k) alpha[k] -= c * grow[k];
        }
      }
    }
  }

  obs::counter("omp/iterations").inc(out.iterations);
  // Report the exactly recomputed residual so downstream consumers see the
  // same value the naive oracle would.
  out.residual_norm =
      support.empty() ? y_norm : support_residual_norm(y, support, coef);
  for (std::size_t si = 0; si < support.size(); ++si) {
    out.coefficients[support[si]] = coef[si];
  }
  out.support = std::move(support);
  return out;
}

OmpResult omp_solve(const linalg::Matrix& dictionary, const linalg::Vector& y,
                    OmpOptions options) {
  return OmpSolver(dictionary, options).solve(y);
}

}  // namespace efficsense::cs
