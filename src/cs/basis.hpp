#pragma once
// Sparsifying bases for CS reconstruction. EEG is approximately sparse in
// the DCT domain, which is what the reconstruction benches use; a Haar
// wavelet basis is provided as an alternative (power-of-two sizes only).

#include <cstddef>

#include "linalg/matrix.hpp"

namespace efficsense::cs {

/// Orthonormal DCT-II synthesis matrix Psi (n x n): x = Psi * coeffs.
/// Columns are the DCT basis vectors; Psi^T Psi = I.
linalg::Matrix dct_synthesis_matrix(std::size_t n);

/// Forward orthonormal DCT-II of a signal (coeffs = Psi^T x).
linalg::Vector dct_forward(const linalg::Vector& x);

/// Inverse orthonormal DCT-II (x = Psi * coeffs).
linalg::Vector dct_inverse(const linalg::Vector& coeffs);

/// Orthonormal Haar synthesis matrix (n must be a power of two).
linalg::Matrix haar_synthesis_matrix(std::size_t n);

/// Orthonormal Daubechies-4 (4-tap) wavelet synthesis matrix with periodic
/// boundary handling. `levels` = 0 selects the deepest decomposition the
/// length allows (n divisible by 2^L with a coarse band of >= 4 samples).
/// Atoms are ordered coarse-to-fine, so truncating to the first k atoms
/// keeps the smooth content — consistent with the DCT ordering.
linalg::Matrix db4_synthesis_matrix(std::size_t n, std::size_t levels = 0);

/// Fraction of signal energy captured by the `k` largest-magnitude
/// coefficients; the operational sparsity measure used in tests.
double energy_in_top_k(const linalg::Vector& coeffs, std::size_t k);

}  // namespace efficsense::cs
