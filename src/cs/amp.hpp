#pragma once
// AMP: approximate message passing for l1-penalized recovery (Donoho,
// Maleki & Montanari). Per iteration two matrix-vector products plus a
// soft threshold — an order of magnitude cheaper per step than greedy
// selection, with the Onsager correction term keeping the effective noise
// at the threshold Gaussian so the simple scalar denoiser stays near
// optimal.
//
// Iteration (on the column-normalized dictionary An):
//   r^t     = x^t + An^T z^t                      (pseudo-data)
//   x^{t+1} = soft(r^t, theta * ||z^t|| / sqrt(M))
//   z^{t+1} = y - An x^{t+1} + (||x^{t+1}||_0 / M) * z^t   (Onsager term)
// with optional damping (convex blend with the previous iterate) for
// dictionaries whose columns are too correlated for vanilla AMP — the
// charge-sharing-compensated SRBM*Psi dictionaries used here are far from
// i.i.d. Gaussian, so damping is on by default. The iterate with the
// smallest true residual ||y - An x|| is returned (un-normalized back to
// the original column scaling), which makes transient divergence harmless.
// Fully deterministic: no RNG, fixed iteration order.

#include <cstddef>

#include "linalg/matrix.hpp"

namespace efficsense::cs {

struct AmpOptions {
  std::size_t max_iters = 100;    ///< iteration cap
  double residual_tol = 1e-3;     ///< stop when ||y - An x|| <= tol*||y||
  double threshold_factor = 1.5;  ///< theta in tau_t = theta*||z^t||/sqrt(M)
  double damping = 0.3;           ///< blend weight on the previous iterate
                                  ///< (0 = vanilla AMP)
};

struct AmpResult {
  linalg::Vector coefficients;  ///< best iterate, size = dictionary cols
  double residual_norm = 0.0;   ///< ||y - A*coefficients||_2 of the best iterate
  std::size_t iterations = 0;   ///< iterations performed
};

AmpResult amp_solve(const linalg::Matrix& dictionary, const linalg::Vector& y,
                    AmpOptions options = {});

}  // namespace efficsense::cs
