#include "cs/basis.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace efficsense::cs {

linalg::Matrix dct_synthesis_matrix(std::size_t n) {
  EFF_REQUIRE(n > 0, "basis size must be positive");
  linalg::Matrix psi(n, n);
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t k = 0; k < n; ++k) {
      const double c = std::cos(std::numbers::pi *
                                (static_cast<double>(t) + 0.5) *
                                static_cast<double>(k) / static_cast<double>(n));
      psi(t, k) = (k == 0 ? norm0 : norm) * c;
    }
  }
  return psi;
}

linalg::Vector dct_forward(const linalg::Vector& x) {
  const std::size_t n = x.size();
  EFF_REQUIRE(n > 0, "dct of empty vector");
  linalg::Vector c(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double norm = (k == 0) ? std::sqrt(1.0 / static_cast<double>(n))
                                 : std::sqrt(2.0 / static_cast<double>(n));
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      sum += x[t] * std::cos(std::numbers::pi * (static_cast<double>(t) + 0.5) *
                             static_cast<double>(k) / static_cast<double>(n));
    }
    c[k] = norm * sum;
  }
  return c;
}

linalg::Vector dct_inverse(const linalg::Vector& coeffs) {
  const std::size_t n = coeffs.size();
  EFF_REQUIRE(n > 0, "idct of empty vector");
  linalg::Vector x(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double norm = (k == 0) ? std::sqrt(1.0 / static_cast<double>(n))
                                   : std::sqrt(2.0 / static_cast<double>(n));
      sum += norm * coeffs[k] *
             std::cos(std::numbers::pi * (static_cast<double>(t) + 0.5) *
                      static_cast<double>(k) / static_cast<double>(n));
    }
    x[t] = sum;
  }
  return x;
}

linalg::Matrix haar_synthesis_matrix(std::size_t n) {
  EFF_REQUIRE(n >= 2 && (n & (n - 1)) == 0,
              "Haar basis requires a power-of-two size");
  // Build the orthonormal Haar analysis matrix row by row, then transpose.
  linalg::Matrix h(n, n);
  const double scale0 = 1.0 / std::sqrt(static_cast<double>(n));
  for (std::size_t j = 0; j < n; ++j) h(0, j) = scale0;
  std::size_t row = 1;
  for (std::size_t level = 1; level <= n; level <<= 1) {
    if (level >= n) break;
    const std::size_t wavelets = level;            // wavelets at this scale
    const std::size_t support = n / level;         // support length
    const double amp = std::sqrt(static_cast<double>(level) /
                                 static_cast<double>(n));
    for (std::size_t w = 0; w < wavelets && row < n; ++w, ++row) {
      const std::size_t start = w * support;
      for (std::size_t j = 0; j < support / 2; ++j) {
        h(row, start + j) = amp;
        h(row, start + support / 2 + j) = -amp;
      }
    }
  }
  return h.transposed();  // synthesis = analysis^T for orthonormal bases
}

namespace {

/// One analysis level of the periodic Daubechies-4 transform as an m x m
/// orthonormal matrix: the first m/2 rows are the low-pass/decimate
/// filter, the rest the high-pass.
linalg::Matrix db4_level_matrix(std::size_t m) {
  const double s3 = std::sqrt(3.0);
  const double norm = 4.0 * std::numbers::sqrt2;
  const double h[4] = {(1.0 + s3) / norm, (3.0 + s3) / norm,
                       (3.0 - s3) / norm, (1.0 - s3) / norm};
  linalg::Matrix a(m, m);
  const std::size_t half = m / 2;
  for (std::size_t k = 0; k < half; ++k) {
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t col = (2 * k + i) % m;
      a(k, col) += h[i];
      // High-pass: g[i] = (-1)^i h[3-i].
      const double g = ((i % 2 == 0) ? 1.0 : -1.0) * h[3 - i];
      a(half + k, col) += g;
    }
  }
  return a;
}

}  // namespace

linalg::Matrix db4_synthesis_matrix(std::size_t n, std::size_t levels) {
  EFF_REQUIRE(n >= 8 && n % 2 == 0, "db4 needs an even length >= 8");
  if (levels == 0) {
    std::size_t band = n;
    while (band % 2 == 0 && band / 2 >= 4) {
      band /= 2;
      ++levels;
    }
  }
  EFF_REQUIRE(levels >= 1, "db4 needs at least one level");
  {
    std::size_t band = n;
    for (std::size_t l = 0; l < levels; ++l) {
      EFF_REQUIRE(band % 2 == 0 && band / 2 >= 4,
                  "length does not support this many db4 levels");
      band /= 2;
    }
  }

  // Analysis W: apply level matrices to progressively coarser bands.
  linalg::Matrix w = db4_level_matrix(n);
  std::size_t band = n / 2;
  for (std::size_t l = 1; l < levels; ++l) {
    // Extend the band-level matrix to n x n with identity on the details.
    const auto a_band = db4_level_matrix(band);
    linalg::Matrix a_full = linalg::Matrix::identity(n);
    for (std::size_t r = 0; r < band; ++r) {
      for (std::size_t c = 0; c < band; ++c) a_full(r, c) = a_band(r, c);
    }
    w = linalg::matmul(a_full, w);
    band /= 2;
  }
  return w.transposed();  // orthonormal: synthesis = analysis^T
}

double energy_in_top_k(const linalg::Vector& coeffs, std::size_t k) {
  EFF_REQUIRE(!coeffs.empty(), "empty coefficient vector");
  std::vector<double> mags(coeffs.size());
  double total = 0.0;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    mags[i] = coeffs[i] * coeffs[i];
    total += mags[i];
  }
  if (total == 0.0) return 1.0;
  k = std::min(k, mags.size());
  std::partial_sort(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k),
                    mags.end(), std::greater<double>());
  double top = 0.0;
  for (std::size_t i = 0; i < k; ++i) top += mags[i];
  return top / total;
}

}  // namespace efficsense::cs
