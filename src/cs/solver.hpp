#pragma once
// The pluggable sparse-solver seam: a string-keyed registry of decode
// algorithms, mirroring arch::ArchRegistry (interface + registrar, built-ins
// registered by the registry constructor so static-library dead-stripping
// can never drop them).
//
// A SparseSolver is a stateless factory: prepare(dictionary) builds the
// per-dictionary state the solve loop amortizes (OMP's precomputed Gram,
// AMP's column-normalized dictionary, BSBL's block partition) and returns a
// PreparedSolver whose solve()/solve_multi() recover one frame per
// right-hand side. solve_multi has a scalar-fallback default (per-lane loop,
// bit-identical to solve per lane) so the K-lane Monte-Carlo engine works
// for every registered solver; solvers with a fused multi-RHS pass (Batch-
// OMP) override it.
//
// Registered built-ins (codes in parentheses are the stable numeric values
// the sweepable "solver" design axis uses — assigned in registration order):
//   omp (0), iht (1), ista (2), bsbl (3), amp (4), compressed_domain (5).
// compressed_domain is the registered "no-reconstruction" decode path: it
// never prepares a dictionary (reconstructs() == false) and the architecture
// layer routes it to a measurement-domain decoder instead of a
// cs::Reconstructor.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cs/omp.hpp"
#include "linalg/matrix.hpp"

namespace efficsense::cs {

/// One recovered frame in the sparsifying-basis domain. `sparse` selects the
/// synthesis path: true routes through support-ordered accumulation (OMP's
/// exact historical arithmetic), false through the dense Psi^T product the
/// iterative solvers always used — keeping both bit-identical to the
/// pre-registry enum dispatch.
struct SparseSolution {
  linalg::Vector coefficients;        ///< basis coefficients (size K atoms)
  std::vector<std::size_t> support;   ///< nonzero atoms (meaningful if sparse)
  bool sparse = false;
  double residual_norm = 0.0;
  std::size_t iterations = 0;
};

/// The solver knobs of ReconstructorConfig, decoupled from the facade so
/// solvers do not depend on cs/reconstructor.hpp.
struct SolverOptions {
  std::size_t sparsity = 0;     ///< atoms for OMP / K for IHT (0 = auto)
  double residual_tol = 1e-3;   ///< stopping criterion (||r|| <= tol*||y||)
  std::size_t max_iters = 100;  ///< iteration cap for iterative solvers
  OmpMode omp_mode = OmpMode::Batch;  ///< OMP selection engine
};

/// Per-dictionary prepared state + the solve loop. Immutable after
/// construction; shared across threads (the ReconstructorCache hands the
/// owning Reconstructor out concurrently).
class PreparedSolver {
 public:
  virtual ~PreparedSolver() = default;

  virtual SparseSolution solve(const linalg::Vector& y) const = 0;

  /// Multi-RHS solve (one frame from each Monte-Carlo lane). The default is
  /// the scalar fallback — a per-lane solve() loop, bit-identical lane for
  /// lane — so lane batching keeps working for every solver. Solvers with a
  /// fused pass (Batch-OMP's shared A^T y streaming) override it.
  virtual std::vector<SparseSolution> solve_multi(
      const std::vector<linalg::Vector>& ys) const;
};

class SparseSolver {
 public:
  virtual ~SparseSolver() = default;

  /// Stable registry key (e.g. "bsbl").
  virtual std::string id() const = 0;
  /// One-line human description (run_sweep --list-solvers).
  virtual std::string description() const = 0;

  /// False for decode paths that skip reconstruction entirely
  /// (compressed_domain): prepare() then throws and the architecture layer
  /// builds a measurement-domain decoder instead of a Reconstructor.
  virtual bool reconstructs() const { return true; }

  /// Build the per-dictionary state. `dictionary` is M x K (measurements x
  /// atoms), moved in so the prepared solver owns the only copy.
  virtual std::shared_ptr<const PreparedSolver> prepare(
      linalg::Matrix dictionary, const SolverOptions& options) const = 0;
};

/// Process-wide, thread-safe id -> SparseSolver registry. Construction
/// registers the built-ins. Each solver also gets a stable numeric code
/// (registration order) so "solver" can be swept like any numeric design
/// axis; codes 0..2 coincide with the deprecated ReconAlgorithm enum values.
class SolverRegistry {
 public:
  static SolverRegistry& instance();

  /// Register a solver; throws Error on a duplicate id.
  void add(std::unique_ptr<SparseSolver> solver);

  /// Lookup by id; throws Error naming the registered ids on a miss.
  const SparseSolver& get(const std::string& id) const;
  /// Lookup by id; nullptr on a miss.
  const SparseSolver* find(const std::string& id) const;
  bool contains(const std::string& id) const { return find(id) != nullptr; }

  /// Numeric code of a registered id (the "solver" axis value); throws
  /// Error listing the registered ids on a miss.
  int code_of(const std::string& id) const;
  /// Id behind a numeric axis code; throws Error on an unknown code.
  std::string id_of_code(int code) const;

  /// Registered solvers sorted by id.
  std::vector<const SparseSolver*> list() const;
  /// "amp, bsbl, ..." — for error messages.
  std::string known_ids() const;

 private:
  SolverRegistry();

  mutable std::mutex mutex_;
  // Sorted by id so list() order is deterministic; codes_ maps registration
  // order -> id (codes are append-only, never reused).
  std::vector<std::unique_ptr<SparseSolver>> solvers_;
  std::vector<std::string> codes_;
};

/// Self-registration helper for solvers living outside this library:
///   static cs::SolverRegistrar reg(std::make_unique<MySolver>());
/// (The built-ins do not rely on this — the registry constructor registers
/// them directly, immune to static-library dead-stripping.)
struct SolverRegistrar {
  explicit SolverRegistrar(std::unique_ptr<SparseSolver> solver);
};

}  // namespace efficsense::cs
