#include "cs/effective.hpp"

#include "util/error.hpp"

namespace efficsense::cs {

ChargeSharingGains charge_sharing_gains(double c_sample_f, double c_hold_f) {
  EFF_REQUIRE(c_sample_f > 0.0 && c_hold_f > 0.0,
              "capacitances must be positive");
  const double total = c_sample_f + c_hold_f;
  return {c_sample_f / total, c_hold_f / total};
}

linalg::Matrix effective_matrix(const SparseBinaryMatrix& phi, double a,
                                double b) {
  // b == 1 models an ideal (active/digital) accumulator with no decay.
  EFF_REQUIRE(a > 0.0 && a <= 1.0 && b >= 0.0 && b <= 1.0,
              "gains must satisfy 0 < a <= 1, 0 <= b <= 1");
  const std::size_t m = phi.rows();
  const std::size_t n = phi.cols();
  linalg::Matrix w(m, n);
  // Walk columns in reverse sampling order, tracking for each row the decay
  // factor accumulated by shares that happen *after* the current sample.
  std::vector<double> decay(m, 1.0);
  for (std::size_t jj = n; jj-- > 0;) {
    for (std::size_t i : phi.column_support(jj)) {
      w(i, jj) = a * decay[i];
      decay[i] *= b;
    }
  }
  return w;
}

linalg::Matrix ideal_matrix(const SparseBinaryMatrix& phi) {
  return phi.to_dense();
}

}  // namespace efficsense::cs
