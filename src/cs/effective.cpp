#include "cs/effective.hpp"

#include "util/error.hpp"

namespace efficsense::cs {

ChargeSharingGains charge_sharing_gains(double c_sample_f, double c_hold_f) {
  EFF_REQUIRE(c_sample_f > 0.0 && c_hold_f > 0.0,
              "capacitances must be positive");
  const double total = c_sample_f + c_hold_f;
  return {c_sample_f / total, c_hold_f / total};
}

linalg::Matrix effective_matrix(const SparseBinaryMatrix& phi, double a,
                                double b) {
  return phi.csr().to_dense(effective_entry_weights(phi, a, b));
}

linalg::Vector effective_entry_weights(const SparseBinaryMatrix& phi, double a,
                                       double b) {
  // b == 1 models an ideal (active/digital) accumulator with no decay.
  EFF_REQUIRE(a > 0.0 && a <= 1.0 && b >= 0.0 && b <= 1.0,
              "gains must satisfy 0 < a <= 1, 0 <= b <= 1");
  const auto& csr = phi.csr();
  linalg::Vector w(csr.nnz(), 0.0);
  // Per row, walk entries in reverse sampling order (descending sample
  // index), tracking the decay accumulated by shares that happen *after*
  // the current sample — the same multiply chain the dense builder used.
  for (std::size_t i = 0; i < csr.rows(); ++i) {
    double decay = 1.0;
    const std::size_t base = csr.entry_index(i, 0);
    for (std::size_t p = csr.row_nnz(i); p-- > 0;) {
      w[base + p] = a * decay;
      decay *= b;
    }
  }
  return w;
}

linalg::Matrix effective_dictionary(const SparseBinaryMatrix& phi, double a,
                                    double b, const linalg::Matrix& psi) {
  return phi.csr().dense_product(psi, effective_entry_weights(phi, a, b));
}

linalg::Matrix ideal_matrix(const SparseBinaryMatrix& phi) {
  return phi.to_dense();
}

}  // namespace efficsense::cs
