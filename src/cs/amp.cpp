#include "cs/amp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace efficsense::cs {

AmpResult amp_solve(const linalg::Matrix& dictionary, const linalg::Vector& y,
                    AmpOptions options) {
  const std::size_t m = dictionary.rows();
  const std::size_t k = dictionary.cols();
  EFF_REQUIRE(m > 0 && k > 0, "amp_solve needs a non-empty dictionary");
  EFF_REQUIRE(y.size() == m, "amp_solve measurement size mismatch");

  AmpResult out;
  out.coefficients.assign(k, 0.0);

  const double y_norm = linalg::norm2(y);
  if (y_norm == 0.0) return out;

  // Column-normalize so the universal threshold rule applies; solve for
  // xn = diag(col_norm) * x and rescale at the end.
  linalg::Vector col_norm(k, 1.0);
  linalg::Matrix an = dictionary;
  for (std::size_t j = 0; j < k; ++j) {
    double sq = 0.0;
    for (std::size_t r = 0; r < m; ++r) sq += an(r, j) * an(r, j);
    const double n = std::sqrt(sq);
    if (n > 0.0) {
      col_norm[j] = n;
      for (std::size_t r = 0; r < m; ++r) an(r, j) /= n;
    }
  }

  const double sqrt_m = std::sqrt(static_cast<double>(m));
  const double damp = std::clamp(options.damping, 0.0, 0.99);

  linalg::Vector x(k, 0.0);
  linalg::Vector z = y;
  linalg::Vector best = x;
  double best_res = y_norm;

  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    out.iterations = iter + 1;

    const linalg::Vector corr = linalg::matvec_transposed(an, z);
    const double tau =
        options.threshold_factor * linalg::norm2(z) / sqrt_m;

    linalg::Vector x_next(k, 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      const double r = x[j] + corr[j];
      if (r > tau) {
        x_next[j] = r - tau;
      } else if (r < -tau) {
        x_next[j] = r + tau;
      }
      if (damp > 0.0) x_next[j] = (1.0 - damp) * x_next[j] + damp * x[j];
    }

    std::size_t nnz = 0;
    for (double c : x_next) {
      if (c != 0.0) ++nnz;
    }

    const linalg::Vector fit = linalg::matvec(an, x_next);
    const double onsager = static_cast<double>(nnz) / static_cast<double>(m);
    linalg::Vector z_next(m);
    for (std::size_t r = 0; r < m; ++r) {
      double zn = y[r] - fit[r] + onsager * z[r];
      if (damp > 0.0) zn = (1.0 - damp) * zn + damp * z[r];
      z_next[r] = zn;
    }

    const double res = linalg::norm2(linalg::vsub(y, fit));
    if (!std::isfinite(res)) break;
    if (res < best_res) {
      best_res = res;
      best = x_next;
    }

    x = std::move(x_next);
    z = std::move(z_next);

    if (res <= options.residual_tol * y_norm) break;
    if (res > 1e3 * y_norm) break;  // diverged; keep the best iterate
  }

  for (std::size_t j = 0; j < k; ++j) {
    out.coefficients[j] = best[j] / col_norm[j];
  }
  out.residual_norm = best_res;
  return out;
}

}  // namespace efficsense::cs
