#pragma once
// BSBL-BO: block-sparse Bayesian learning with bound optimization
// (Zhang & Rao; applied to energy-efficient EEG telemonitoring in Liu et
// al., arXiv:1309.7843). EEG frames are block-sparse in the DCT/Db4 bases —
// energy clusters in runs of adjacent atoms — and BSBL learns one variance
// hyperparameter per block of consecutive atoms instead of per atom, which
// is why it recovers EEG at compression ratios where atom-wise solvers
// fall apart.
//
// The model: y = A x + noise, x partitioned into blocks of `block_size`
// consecutive atoms, block i Gaussian with covariance gamma_i * I. Each BO
// iteration factorizes Sigma_y = lambda*I + A*Sigma0*A^T (Cholesky, SPD by
// construction) and applies the fixed-point update
//   gamma_i <- gamma_i * ||q_i||_2 / sqrt(trace(S_i)),
//   q_i = A_i^T Sigma_y^{-1} y,   S_i = A_i^T Sigma_y^{-1} A_i,
// pruning blocks whose gamma collapses relative to the largest. The
// posterior mean mu = Sigma0 A^T Sigma_y^{-1} y is the recovered frame.
// Fully deterministic: no RNG, fixed iteration order, fixed noise floor
// lambda derived from residual_tol (no lambda learning).

#include <cstddef>

#include "linalg/matrix.hpp"

namespace efficsense::cs {

struct BsblOptions {
  std::size_t block_size = 8;   ///< atoms per block (last block may be short)
  std::size_t max_iters = 100;  ///< BO iteration cap
  double residual_tol = 1e-3;   ///< sets the noise floor lambda (see below)
  double prune_gamma = 1e-4;    ///< prune blocks with gamma < prune*max gamma
  double lambda = 0.0;          ///< noise variance; 0 selects
                                ///< max(1e-12, (residual_tol*||y||)^2 / M)
  double gamma_tol = 1e-6;      ///< stop when max relative gamma change drops
};

struct BsblResult {
  linalg::Vector coefficients;  ///< posterior mean, size = dictionary cols
  double residual_norm = 0.0;   ///< ||y - A*mu||_2
  std::size_t iterations = 0;   ///< BO iterations performed
};

BsblResult bsbl_solve(const linalg::Matrix& dictionary,
                      const linalg::Vector& y, BsblOptions options = {});

}  // namespace efficsense::cs
