#include "cs/bsbl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/decompositions.hpp"
#include "util/error.hpp"

namespace efficsense::cs {
namespace {

// Sigma_y = lambda*I + sum_j gamma(block(j)) * a_j a_j^T, assembled as
// gram(W^T) with W rows sqrt(gamma_j) * a_j so the flop count stays at the
// symmetric-half rate. `at` is the transposed dictionary (atoms as rows).
linalg::Matrix build_sigma_y(const linalg::Matrix& at, std::size_t block_size,
                             const std::vector<double>& gammas,
                             double lambda) {
  const std::size_t k = at.rows();
  const std::size_t m = at.cols();
  linalg::Matrix w(k, m);
  for (std::size_t j = 0; j < k; ++j) {
    const double g = gammas[j / block_size];
    if (g <= 0.0) continue;
    const double s = std::sqrt(g);
    const double* src = at.row_ptr(j);
    double* dst = w.row_ptr(j);
    for (std::size_t c = 0; c < m; ++c) dst[c] = s * src[c];
  }
  linalg::Matrix sigma_y = linalg::gram(w);
  for (std::size_t d = 0; d < m; ++d) sigma_y(d, d) += lambda;
  return sigma_y;
}

}  // namespace

BsblResult bsbl_solve(const linalg::Matrix& dictionary, const linalg::Vector& y,
                      BsblOptions options) {
  const std::size_t m = dictionary.rows();
  const std::size_t k = dictionary.cols();
  EFF_REQUIRE(m > 0 && k > 0, "bsbl_solve needs a non-empty dictionary");
  EFF_REQUIRE(y.size() == m, "bsbl_solve measurement size mismatch");

  const std::size_t block = std::max<std::size_t>(1, options.block_size);
  const std::size_t n_blocks = (k + block - 1) / block;

  BsblResult out;
  out.coefficients.assign(k, 0.0);

  const double y_norm = linalg::norm2(y);
  if (y_norm == 0.0) return out;

  // Noise floor: a fixed value when the caller knows it, otherwise seeded
  // from the residual tolerance and learned by the type-II EM rule below —
  // a fixed seed badly overfits when the true measurement noise exceeds
  // the nominal tolerance (the regime chain sweeps actually operate in).
  const bool learn_lambda = !(options.lambda > 0.0);
  double lambda =
      options.lambda > 0.0
          ? options.lambda
          : std::max(1e-12, (options.residual_tol * y_norm) *
                                (options.residual_tol * y_norm) /
                                static_cast<double>(m));

  const linalg::Matrix at = dictionary.transposed();
  std::vector<double> gammas(n_blocks, 1.0);

  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    out.iterations = iter + 1;

    const linalg::Matrix sigma_y = build_sigma_y(at, block, gammas, lambda);
    const linalg::Matrix l = linalg::cholesky(sigma_y);
    const linalg::Matrix lt = l.transposed();
    const linalg::Vector v =
        linalg::solve_upper(lt, linalg::solve_lower(l, y));

    double max_rel_change = 0.0;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      if (gammas[b] <= 0.0) continue;
      const std::size_t j0 = b * block;
      const std::size_t j1 = std::min(k, j0 + block);
      double q_sq = 0.0;
      double trace_s = 0.0;
      for (std::size_t j = j0; j < j1; ++j) {
        const linalg::Vector atom(at.row_ptr(j), at.row_ptr(j) + m);
        const double q = linalg::dot(atom, v);
        q_sq += q * q;
        // a^T Sigma_y^{-1} a = ||L^{-1} a||^2.
        const linalg::Vector half = linalg::solve_lower(l, atom);
        trace_s += linalg::dot(half, half);
      }
      if (!(trace_s > 0.0) || !std::isfinite(trace_s) ||
          !std::isfinite(q_sq)) {
        gammas[b] = 0.0;
        continue;
      }
      const double next = gammas[b] * std::sqrt(q_sq) / std::sqrt(trace_s);
      max_rel_change = std::max(
          max_rel_change, std::abs(next - gammas[b]) / std::max(gammas[b], next));
      gammas[b] = next;
    }

    double g_max = 0.0;
    for (double g : gammas) g_max = std::max(g_max, g);
    if (g_max <= 0.0) break;
    for (double& g : gammas) {
      if (g < options.prune_gamma * g_max) g = 0.0;
    }

    if (learn_lambda) {
      // Type-II EM noise update: lambda <- (||y - A mu||^2 +
      // lambda*(M - lambda*tr(Sigma_y^{-1}))) / M. The posterior mean
      // satisfies y - A mu = lambda*v, and tr(Sigma_y^{-1}) = ||L^{-1}||_F^2
      // falls out of the Cholesky factor column by column.
      double tr_inv = 0.0;
      linalg::Vector e(m, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        std::fill(e.begin(), e.end(), 0.0);
        e[i] = 1.0;
        const linalg::Vector col = linalg::solve_lower(l, e);
        tr_inv += linalg::dot(col, col);
      }
      const double v_sq = linalg::dot(v, v);
      const double next =
          (lambda * lambda * v_sq +
           lambda * (static_cast<double>(m) - lambda * tr_inv)) /
          static_cast<double>(m);
      if (std::isfinite(next)) {
        const double ceiling = y_norm * y_norm / static_cast<double>(m);
        const double clamped = std::clamp(next, 1e-12, ceiling);
        max_rel_change =
            std::max(max_rel_change, std::abs(clamped - lambda) /
                                         std::max(lambda, clamped));
        lambda = clamped;
      }
    }

    if (max_rel_change < options.gamma_tol) break;
  }

  // Posterior mean with the final hyperparameters: mu_j = gamma_j * a_j^T v.
  double g_max = 0.0;
  for (double g : gammas) g_max = std::max(g_max, g);
  if (g_max > 0.0) {
    const linalg::Matrix sigma_y = build_sigma_y(at, block, gammas, lambda);
    const linalg::Matrix l = linalg::cholesky(sigma_y);
    const linalg::Vector v =
        linalg::solve_upper(l.transposed(), linalg::solve_lower(l, y));
    for (std::size_t j = 0; j < k; ++j) {
      const double g = gammas[j / block];
      if (g <= 0.0) continue;
      const linalg::Vector atom(at.row_ptr(j), at.row_ptr(j) + m);
      out.coefficients[j] = g * linalg::dot(atom, v);
    }
  }

  const linalg::Vector fit = linalg::matvec(dictionary, out.coefficients);
  out.residual_norm = linalg::norm2(linalg::vsub(y, fit));
  return out;
}

}  // namespace efficsense::cs
