#include "cs/reconstructor.hpp"

#include <algorithm>
#include <memory>

#include "cs/basis.hpp"
#include "cs/iterative.hpp"
#include "cs/omp.hpp"
#include "util/error.hpp"

namespace efficsense::cs {

Reconstructor::Reconstructor(const SparseBinaryMatrix& phi,
                             ChargeSharingGains gains,
                             ReconstructorConfig config)
    : m_(phi.rows()), n_(phi.cols()), config_(config) {
  EFF_REQUIRE(m_ > 0 && n_ > 0, "empty sensing matrix");

  // Truncate the DCT dictionary to the low-frequency atoms that carry EEG
  // energy; the automatic choice keeps the system comfortably solvable.
  k_atoms_ = config_.basis_atoms;
  if (k_atoms_ == 0) {
    k_atoms_ = std::max<std::size_t>(
        16, static_cast<std::size_t>(0.85 * static_cast<double>(m_)));
  }
  k_atoms_ = std::min(k_atoms_, n_);

  const linalg::Matrix psi_full = (config_.basis == BasisKind::Db4)
                                      ? db4_synthesis_matrix(n_)
                                      : dct_synthesis_matrix(n_);
  psi_ = linalg::Matrix(n_, k_atoms_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = 0; k < k_atoms_; ++k) psi_(r, k) = psi_full(r, k);
  }

  const linalg::Matrix sensing =
      config_.compensate_decay ? effective_matrix(phi, gains.a, gains.b)
                               : ideal_matrix(phi);
  dictionary_ = linalg::matmul(sensing, psi_);
  if (config_.algorithm == ReconAlgorithm::Omp) {
    OmpOptions opts;
    opts.max_atoms = (config_.sparsity != 0)
                         ? config_.sparsity
                         : std::max<std::size_t>(1, m_ / 3);
    opts.residual_tol = config_.residual_tol;
    omp_ = std::make_shared<OmpSolver>(dictionary_, opts);
  }
}

linalg::Vector Reconstructor::reconstruct_frame(const linalg::Vector& y) const {
  EFF_REQUIRE(y.size() == m_, "measurement frame has wrong size");
  linalg::Vector coeffs;
  switch (config_.algorithm) {
    case ReconAlgorithm::Omp:
      coeffs = omp_->solve(y).coefficients;
      break;
    case ReconAlgorithm::Iht: {
      IhtOptions opts;
      opts.sparsity = config_.sparsity;
      opts.max_iters = config_.max_iters;
      coeffs = iht_solve(dictionary_, y, opts);
      break;
    }
    case ReconAlgorithm::Ista: {
      IstaOptions opts;
      opts.max_iters = config_.max_iters;
      coeffs = ista_solve(dictionary_, y, opts);
      break;
    }
  }
  return linalg::matvec(psi_, coeffs);
}

std::vector<double> Reconstructor::reconstruct_stream(
    const std::vector<double>& measurements) const {
  const std::size_t frames = measurements.size() / m_;
  std::vector<double> out;
  out.reserve(frames * n_);
  linalg::Vector y(m_);
  for (std::size_t f = 0; f < frames; ++f) {
    for (std::size_t i = 0; i < m_; ++i) y[i] = measurements[f * m_ + i];
    const linalg::Vector x = reconstruct_frame(y);
    out.insert(out.end(), x.begin(), x.end());
  }
  return out;
}

}  // namespace efficsense::cs
