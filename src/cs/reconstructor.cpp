#include "cs/reconstructor.hpp"

#include <algorithm>
#include <memory>

#include "cs/basis.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace efficsense::cs {

std::string recon_algorithm_id(ReconAlgorithm algorithm) {
  switch (algorithm) {
    case ReconAlgorithm::Omp:
      return "omp";
    case ReconAlgorithm::Iht:
      return "iht";
    case ReconAlgorithm::Ista:
      return "ista";
  }
  throw Error("invalid ReconAlgorithm value");
}

Reconstructor::Reconstructor(const SparseBinaryMatrix& phi,
                             ChargeSharingGains gains,
                             ReconstructorConfig config)
    : m_(phi.rows()), n_(phi.cols()), config_(config) {
  EFF_REQUIRE(m_ > 0 && n_ > 0, "empty sensing matrix");
  EFFICSENSE_SPAN("recon/setup");

  const std::string solver_id = config_.solver_id();
  const SparseSolver& solver = SolverRegistry::instance().get(solver_id);
  if (!solver.reconstructs()) {
    throw Error("solver '" + solver_id +
                "' does not reconstruct; the architecture layer must route "
                "it to a measurement-domain decoder instead of a "
                "cs::Reconstructor");
  }

  // Truncate the DCT dictionary to the low-frequency atoms that carry EEG
  // energy; the automatic choice keeps the system comfortably solvable.
  k_atoms_ = config_.basis_atoms;
  if (k_atoms_ == 0) {
    k_atoms_ = std::max<std::size_t>(
        16, static_cast<std::size_t>(0.85 * static_cast<double>(m_)));
  }
  k_atoms_ = std::min(k_atoms_, n_);

  const linalg::Matrix psi_full = (config_.basis == BasisKind::Db4)
                                      ? db4_synthesis_matrix(n_)
                                      : dct_synthesis_matrix(n_);
  linalg::Matrix psi_trunc(n_, k_atoms_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = 0; k < k_atoms_; ++k) {
      psi_trunc(r, k) = psi_full(r, k);
    }
  }

  // Assemble A = Phi_eff * Psi through the CSR sensing operator: O(nnz * K)
  // instead of the dense O(M * N * K), bitwise identical to the dense path.
  linalg::Matrix dictionary =
      config_.compensate_decay
          ? effective_dictionary(phi, gains.a, gains.b, psi_trunc)
          : phi.csr().dense_product(psi_trunc);
  psi_t_ = psi_trunc.transposed();

  SolverOptions opts;
  opts.sparsity = config_.sparsity;
  opts.residual_tol = config_.residual_tol;
  opts.max_iters = config_.max_iters;
  opts.omp_mode = config_.omp_mode;
  prepared_ = solver.prepare(std::move(dictionary), opts);
}

linalg::Vector Reconstructor::synthesize(const SparseSolution& sol) const {
  if (!sol.sparse) {
    return linalg::matvec_transposed(psi_t_, sol.coefficients);
  }
  // Synthesize from the support alone: O(k * N) instead of O(K * N).
  // Atoms are visited in ascending index order, so every output sample
  // accumulates its terms in the same order a dense Psi * c would.
  std::vector<std::size_t> atoms = sol.support;
  std::sort(atoms.begin(), atoms.end());
  linalg::Vector out(n_, 0.0);
  for (const std::size_t atom : atoms) {
    const double c = sol.coefficients[atom];
    const double* row = psi_t_.row_ptr(atom);
    for (std::size_t r = 0; r < n_; ++r) out[r] += c * row[r];
  }
  return out;
}

linalg::Vector Reconstructor::reconstruct_frame(const linalg::Vector& y) const {
  EFF_REQUIRE(y.size() == m_, "measurement frame has wrong size");
  return synthesize(prepared_->solve(y));
}

std::vector<double> Reconstructor::reconstruct_stream(
    const std::vector<double>& measurements, ThreadPool* pool) const {
  const std::size_t frames = measurements.size() / m_;
  std::vector<double> out(frames * n_, 0.0);
  const auto recover_frame = [&](std::size_t f) {
    const linalg::Vector y(measurements.begin() + f * m_,
                           measurements.begin() + (f + 1) * m_);
    const linalg::Vector x = reconstruct_frame(y);
    std::copy(x.begin(), x.end(), out.begin() + f * n_);
  };
  if (pool != nullptr && pool->size() > 1 && frames > 1) {
    pool->parallel_for(frames, recover_frame);
  } else {
    for (std::size_t f = 0; f < frames; ++f) recover_frame(f);
  }
  return out;
}

std::vector<std::vector<double>> Reconstructor::reconstruct_stream_multi(
    const std::vector<const double*>& lanes, std::size_t length,
    ThreadPool* pool) const {
  const std::size_t n_lanes = lanes.size();
  const std::size_t frames = length / m_;
  std::vector<std::vector<double>> out(n_lanes,
                                       std::vector<double>(frames * n_, 0.0));
  if (n_lanes == 0 || frames == 0) return out;

  // One multi-RHS solve per frame window: Batch-OMP fuses the A^T y pass
  // across lanes against the shared Gram, every other solver takes the
  // scalar per-lane fallback; per-lane results are bit-identical to solving
  // that lane's frame alone either way.
  const auto recover_frame = [&](std::size_t f) {
    std::vector<linalg::Vector> ys(n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
      ys[l].assign(lanes[l] + f * m_, lanes[l] + (f + 1) * m_);
    }
    const std::vector<SparseSolution> results = prepared_->solve_multi(ys);
    for (std::size_t l = 0; l < n_lanes; ++l) {
      const linalg::Vector x = synthesize(results[l]);
      std::copy(x.begin(), x.end(), out[l].begin() + f * n_);
    }
  };
  if (pool != nullptr && pool->size() > 1 && frames > 1) {
    pool->parallel_for(frames, recover_frame);
  } else {
    for (std::size_t f = 0; f < frames; ++f) recover_frame(f);
  }
  return out;
}

}  // namespace efficsense::cs
