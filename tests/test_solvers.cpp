// The pluggable sparse-solver registry: dispatch, codes, error contracts,
// the deprecated ReconAlgorithm shim, BSBL/AMP accuracy versus a naive
// oracle, seed-pinned IHT/ISTA recovery, the solver-keyed reconstructor
// cache, solver-sensitive config digests, and the scalar solve_multi
// fallback's bit-identity on the lane path.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "arch/recon_cache.hpp"
#include "arch/scenario.hpp"
#include "classify/detector.hpp"
#include "core/evaluator.hpp"
#include "cs/amp.hpp"
#include "cs/basis.hpp"
#include "cs/bsbl.hpp"
#include "cs/effective.hpp"
#include "cs/reconstructor.hpp"
#include "cs/solver.hpp"
#include "cs/srbm.hpp"
#include "eeg/generator.hpp"
#include "linalg/decompositions.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;

namespace {

linalg::Matrix gaussian_dict(std::size_t m, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix d(m, k);
  for (auto& v : d.data()) v = rng.gaussian() / std::sqrt(static_cast<double>(m));
  return d;
}

linalg::Vector sparse_vector(std::size_t k, std::size_t nnz,
                             std::uint64_t seed) {
  Rng rng(seed);
  linalg::Vector x(k, 0.0);
  std::size_t placed = 0;
  while (placed < nnz) {
    const auto idx = static_cast<std::size_t>(rng.below(k));
    if (x[idx] != 0.0) continue;
    x[idx] = rng.gaussian() + (rng.chance(0.5) ? 2.0 : -2.0);
    ++placed;
  }
  return x;
}

/// Block-sparse ground truth: `blocks` whole blocks of `block_size` active.
linalg::Vector block_sparse_vector(std::size_t k, std::size_t block_size,
                                   std::size_t blocks, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Vector x(k, 0.0);
  const std::size_t n_blocks = (k + block_size - 1) / block_size;
  std::set<std::size_t> chosen;
  while (chosen.size() < blocks) {
    chosen.insert(static_cast<std::size_t>(rng.below(n_blocks)));
  }
  for (const auto b : chosen) {
    for (std::size_t j = b * block_size; j < std::min(k, (b + 1) * block_size);
         ++j) {
      x[j] = rng.gaussian() + (rng.chance(0.5) ? 1.5 : -1.5);
    }
  }
  return x;
}

double rel_err(const linalg::Vector& a, const linalg::Vector& b) {
  return linalg::norm2(linalg::vsub(a, b)) / linalg::norm2(b);
}

/// The naive reference both Bayesian solvers are judged against: ordinary
/// least squares restricted to the true support (exact on noiseless data).
linalg::Vector oracle_solution(const linalg::Matrix& dict,
                               const linalg::Vector& y,
                               const linalg::Vector& truth) {
  std::vector<std::size_t> support;
  for (std::size_t j = 0; j < truth.size(); ++j) {
    if (truth[j] != 0.0) support.push_back(j);
  }
  linalg::Matrix sub(dict.rows(), support.size());
  for (std::size_t i = 0; i < dict.rows(); ++i) {
    for (std::size_t c = 0; c < support.size(); ++c) {
      sub(i, c) = dict(i, support[c]);
    }
  }
  const auto coeffs = linalg::lstsq(sub, y);
  linalg::Vector full(truth.size(), 0.0);
  for (std::size_t c = 0; c < support.size(); ++c) full[support[c]] = coeffs[c];
  return full;
}

/// A band-limited test frame: a few low-frequency DCT atoms.
linalg::Vector bandlimited_frame(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Vector coeffs(n, 0.0);
  for (std::size_t k = 1; k < 20 && k < n; ++k) {
    coeffs[k] = rng.gaussian() / (1.0 + 0.3 * static_cast<double>(k));
  }
  return cs::dct_inverse(coeffs);
}

}  // namespace

// --- Registry dispatch and error contracts ---------------------------------

TEST(SolverRegistry, BuiltinsAreRegisteredWithStableCodes) {
  auto& reg = cs::SolverRegistry::instance();
  // Codes follow registration order; 0..2 coincide with ReconAlgorithm.
  const std::vector<std::pair<std::string, int>> expected = {
      {"omp", 0},      {"iht", 1},  {"ista", 2},
      {"bsbl", 3},     {"amp", 4},  {"compressed_domain", 5}};
  for (const auto& [id, code] : expected) {
    EXPECT_TRUE(reg.contains(id)) << id;
    EXPECT_EQ(reg.get(id).id(), id);
    EXPECT_EQ(reg.code_of(id), code) << id;
    EXPECT_EQ(reg.id_of_code(code), id) << code;
    EXPECT_FALSE(reg.get(id).description().empty()) << id;
  }
  // list() is sorted by id and covers at least the built-ins.
  const auto list = reg.list();
  ASSERT_GE(list.size(), expected.size());
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1]->id(), list[i]->id());
  }
}

TEST(SolverRegistry, UnknownIdAndCodeAreHardErrorsListingKnownIds) {
  auto& reg = cs::SolverRegistry::instance();
  try {
    reg.get("no_such_solver");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown solver 'no_such_solver'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("bsbl"), std::string::npos) << msg;
    EXPECT_NE(msg.find("registered solvers"), std::string::npos) << msg;
  }
  EXPECT_EQ(reg.find("no_such_solver"), nullptr);
  EXPECT_THROW((void)reg.code_of("no_such_solver"), Error);
  EXPECT_THROW((void)reg.id_of_code(9999), Error);
}

namespace {

class DummySolver : public cs::SparseSolver {
 public:
  explicit DummySolver(std::string id) : id_(std::move(id)) {}
  std::string id() const override { return id_; }
  std::string description() const override { return "test dummy"; }
  std::shared_ptr<const cs::PreparedSolver> prepare(
      linalg::Matrix, const cs::SolverOptions&) const override {
    throw Error("dummy never prepares");
  }

 private:
  std::string id_;
};

}  // namespace

TEST(SolverRegistry, DuplicateIdIsRejectedAndNewIdsGetFreshCodes) {
  auto& reg = cs::SolverRegistry::instance();
  try {
    reg.add(std::make_unique<DummySolver>("omp"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("already registered"),
              std::string::npos);
  }
  // A novel id registers and receives the next registration-order code.
  reg.add(std::make_unique<DummySolver>("zz_test_dummy"));
  EXPECT_TRUE(reg.contains("zz_test_dummy"));
  EXPECT_EQ(reg.code_of("zz_test_dummy"), 6);
  EXPECT_EQ(reg.id_of_code(6), "zz_test_dummy");
}

// --- Deprecated ReconAlgorithm compat shim ---------------------------------

TEST(SolverRegistry, ReconAlgorithmShimMapsOntoRegistryIds) {
  EXPECT_EQ(cs::recon_algorithm_id(cs::ReconAlgorithm::Omp), "omp");
  EXPECT_EQ(cs::recon_algorithm_id(cs::ReconAlgorithm::Iht), "iht");
  EXPECT_EQ(cs::recon_algorithm_id(cs::ReconAlgorithm::Ista), "ista");

  cs::ReconstructorConfig cfg;
  EXPECT_EQ(cfg.solver_id(), "omp");  // default algorithm = Omp
  cfg.algorithm = cs::ReconAlgorithm::Ista;
  EXPECT_EQ(cfg.solver_id(), "ista");
  cfg.solver = "bsbl";  // explicit registry id wins over the enum
  EXPECT_EQ(cfg.solver_id(), "bsbl");
}

TEST(SolverRegistry, CompressedDomainNeverPreparesADictionary) {
  const auto& solver = cs::SolverRegistry::instance().get("compressed_domain");
  EXPECT_FALSE(solver.reconstructs());
  EXPECT_THROW((void)solver.prepare(gaussian_dict(8, 16, 1), {}), Error);

  // The Reconstructor facade rejects it at construction (the architecture
  // layer must route to a measurement-domain decoder instead).
  const auto phi = cs::SparseBinaryMatrix::generate(16, 64, 2, 7);
  cs::ReconstructorConfig cfg;
  cfg.solver = "compressed_domain";
  EXPECT_THROW(cs::Reconstructor(phi, {1.0, 0.0}, cfg), Error);
}

// --- Seed-pinned IHT / ISTA recovery ---------------------------------------

TEST(SolverRecovery, IhtRecoversSupportOnEasyProblems) {
  const std::size_t m = 64, k = 128, nnz = 3;
  const auto& solver = cs::SolverRegistry::instance().get("iht");
  // IHT's greedy thresholding can lock onto one coherent off-support atom,
  // so individual seed-pinned instances may fail; the pinned property is
  // the recovery *rate* over the fixed seed set, and that every recovered
  // support yields a near-exact solve.
  std::size_t recovered = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto dict = gaussian_dict(m, k, 100 + seed);
    auto truth = sparse_vector(k, nnz, 200 + seed);
    for (auto& v : truth) {
      if (v != 0.0) v = (v > 0.0 ? 1.0 : -1.0) * (2.0 + std::abs(v));
    }
    const auto y = linalg::matvec(dict, truth);
    cs::SolverOptions opts;
    opts.sparsity = nnz;
    opts.max_iters = 2000;  // the safe 1/||D||_F^2 step converges slowly
    const auto sol = solver.prepare(dict, opts)->solve(y);
    bool support_ok = true;
    for (std::size_t j = 0; j < k; ++j) {
      if ((sol.coefficients[j] != 0.0) != (truth[j] != 0.0)) support_ok = false;
    }
    if (!support_ok) continue;
    EXPECT_LT(rel_err(sol.coefficients, truth), 1e-3) << "seed " << seed;
    ++recovered;
  }
  EXPECT_GE(recovered, 5u) << recovered << "/8 supports recovered";
}

TEST(SolverRecovery, IstaResidualIsMonotoneInIterationBudget) {
  const std::size_t m = 64, k = 128;
  const auto dict = gaussian_dict(m, k, 301);
  const auto truth = sparse_vector(k, 6, 302);
  const auto y = linalg::matvec(dict, truth);
  const auto& solver = cs::SolverRegistry::instance().get("ista");
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t iters : {5u, 10u, 20u, 40u, 80u}) {
    cs::SolverOptions opts;
    opts.max_iters = iters;
    opts.residual_tol = 0.0;  // run the full budget
    const auto sol = solver.prepare(dict, opts)->solve(y);
    const auto fit = linalg::matvec(dict, sol.coefficients);
    const double res = linalg::norm2(linalg::vsub(y, fit));
    EXPECT_LE(res, prev + 1e-9) << iters << " iters";
    prev = res;
  }
  // And the budgeted solve actually shrinks the residual substantially.
  EXPECT_LT(prev, 0.5 * linalg::norm2(y));
}

// --- BSBL / AMP versus the naive oracle on 50 seed-pinned problems ---------

TEST(SolverRecovery, BsblMatchesOracleOn50BlockSparseProblems) {
  const std::size_t m = 64, k = 128, block = 8, active = 2;
  const auto& solver = cs::SolverRegistry::instance().get("bsbl");
  std::size_t hits = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto dict = gaussian_dict(m, k, 1000 + seed);
    const auto truth = block_sparse_vector(k, block, active, 2000 + seed);
    const auto y = linalg::matvec(dict, truth);
    const auto oracle = oracle_solution(dict, y, truth);
    // Noiseless: the oracle least squares is exact.
    ASSERT_LT(rel_err(oracle, truth), 1e-8) << "seed " << seed;

    cs::SolverOptions opts;
    opts.residual_tol = 1e-6;
    opts.max_iters = 200;
    const auto sol = solver.prepare(dict, opts)->solve(y);
    if (rel_err(sol.coefficients, oracle) < 1e-2) ++hits;
  }
  EXPECT_GE(hits, 47u) << hits << "/50 within 1% of the oracle";
}

TEST(SolverRecovery, AmpApproachesOracleOn50SparseProblems) {
  const std::size_t m = 64, k = 128, nnz = 6;
  const auto& solver = cs::SolverRegistry::instance().get("amp");
  std::size_t hits = 0;
  double worst = 0.0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto dict = gaussian_dict(m, k, 3000 + seed);
    const auto truth = sparse_vector(k, nnz, 4000 + seed);
    const auto y = linalg::matvec(dict, truth);
    const auto oracle = oracle_solution(dict, y, truth);

    cs::SolverOptions opts;
    opts.residual_tol = 1e-5;
    opts.max_iters = 300;
    const auto sol = solver.prepare(dict, opts)->solve(y);
    const double err = rel_err(sol.coefficients, oracle);
    worst = std::max(worst, err);
    if (err < 0.1) ++hits;
  }
  EXPECT_GE(hits, 45u) << hits << "/50 within 10% of the oracle (worst "
                       << worst << ")";
}

TEST(SolverRecovery, BsblAndAmpAreDeterministic) {
  const auto dict = gaussian_dict(48, 96, 11);
  const auto y = linalg::matvec(dict, sparse_vector(96, 5, 12));
  for (const char* id : {"bsbl", "amp"}) {
    const auto prepared =
        cs::SolverRegistry::instance().get(id).prepare(dict, {});
    const auto a = prepared->solve(y);
    const auto b = prepared->solve(y);
    ASSERT_EQ(a.coefficients.size(), b.coefficients.size());
    for (std::size_t j = 0; j < a.coefficients.size(); ++j) {
      EXPECT_EQ(a.coefficients[j], b.coefficients[j]) << id;
    }
  }
}

// --- Solver-keyed reconstructor cache --------------------------------------

TEST(SolverCache, DistinctSolversNeverShareACacheEntry) {
  auto& cache = arch::ReconstructorCache::instance();
  cache.clear();
  power::DesignParams design;
  design.cs_m = 32;
  design.cs_n_phi = 128;
  const arch::ChainSeeds seeds;

  cs::ReconstructorConfig omp_cfg;
  omp_cfg.residual_tol = 0.02;
  cs::ReconstructorConfig bsbl_cfg = omp_cfg;
  bsbl_cfg.solver = "bsbl";

  const auto a = cache.get(design, seeds, omp_cfg);
  const auto b = cache.get(design, seeds, bsbl_cfg);
  EXPECT_NE(a.get(), b.get());  // same design+seeds, different solver
  EXPECT_EQ(cache.size(), 2u);

  // Same config hits the same entry.
  EXPECT_EQ(cache.get(design, seeds, omp_cfg).get(), a.get());
  EXPECT_EQ(cache.get(design, seeds, bsbl_cfg).get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
}

// --- Journals refuse foreign-solver results --------------------------------

TEST(SolverDigest, ScenarioDigestIsSolverSensitive) {
  const char* tmpl = R"({
    "name": "digest-probe",
    "base": {"cs_m": 75},
    "eval": {"residual_tol": 0.02, "solver": "%s"},
    "sweep": {"segments": 2, "train_segments": 4, "seed": 7}
  })";
  auto spec_for = [&](const std::string& solver) {
    char buf[512];
    std::snprintf(buf, sizeof(buf), tmpl, solver.c_str());
    return arch::scenario_from_json(buf);
  };
  const auto omp = spec_for("omp");
  const auto bsbl = spec_for("bsbl");
  EXPECT_NE(omp.digest(), bsbl.digest());
  // Explicit "omp" digests the same as the implicit default.
  auto implicit = omp;
  implicit.recon.solver.clear();
  EXPECT_EQ(implicit.digest(), omp.digest());
}

TEST(SolverDigest, EvaluatorConfigDigestIsSolverSensitive) {
  const eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto dataset = eeg::make_dataset(gen, 1, 1, 909);
  const auto detector = classify::EpilepsyDetector::train(
      eeg::make_dataset(gen, 2, 2, 910), [] {
        classify::DetectorConfig cfg;
        cfg.train.epochs = 3;
        return cfg;
      }());

  core::EvalOptions omp_opt;
  omp_opt.recon.residual_tol = 0.02;
  core::EvalOptions bsbl_opt = omp_opt;
  bsbl_opt.recon.solver = "bsbl";
  core::EvalOptions bad_opt = omp_opt;
  bad_opt.recon.solver = "no_such_solver";

  const core::Evaluator a(power::TechnologyParams{}, &dataset, &detector,
                          omp_opt);
  const core::Evaluator b(power::TechnologyParams{}, &dataset, &detector,
                          bsbl_opt);
  // Only the solver differs, so a journal written by one refuses the other.
  EXPECT_NE(a.config_digest(), b.config_digest());
  // Unknown solvers fail at evaluator construction, not at point N.
  EXPECT_THROW(core::Evaluator(power::TechnologyParams{}, &dataset, &detector,
                               bad_opt),
               Error);
}

// --- Lane path: the scalar solve_multi fallback is bit-identical -----------

TEST(SolverLanes, FallbackSolveMultiIsBitIdenticalPerLane) {
  const auto dict = gaussian_dict(48, 96, 21);
  std::vector<linalg::Vector> ys;
  for (std::uint64_t s = 0; s < 3; ++s) {
    ys.push_back(linalg::matvec(dict, sparse_vector(96, 5, 30 + s)));
  }
  for (const char* id : {"bsbl", "amp", "iht", "ista"}) {
    const auto prepared =
        cs::SolverRegistry::instance().get(id).prepare(dict, {});
    const auto multi = prepared->solve_multi(ys);
    ASSERT_EQ(multi.size(), ys.size()) << id;
    for (std::size_t l = 0; l < ys.size(); ++l) {
      const auto single = prepared->solve(ys[l]);
      ASSERT_EQ(multi[l].coefficients.size(), single.coefficients.size());
      for (std::size_t j = 0; j < single.coefficients.size(); ++j) {
        EXPECT_EQ(multi[l].coefficients[j], single.coefficients[j])
            << id << " lane " << l;
      }
    }
  }
}

TEST(SolverLanes, BsblStreamMultiMatchesPerLaneStreams) {
  const std::size_t n = 96, m = 48, frames = 2, lanes = 2;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 71);
  const auto gains = cs::charge_sharing_gains(0.125e-12, 0.5e-12);
  cs::ReconstructorConfig cfg;
  cfg.residual_tol = 0.02;
  cfg.solver = "bsbl";
  const cs::Reconstructor rec(phi, gains, cfg);
  const auto w = cs::effective_entry_weights(phi, gains.a, gains.b);

  std::vector<linalg::Vector> streams(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::uint64_t f = 0; f < frames; ++f) {
      const auto y = phi.csr().apply(bandlimited_frame(n, 10 * l + f), w);
      streams[l].insert(streams[l].end(), y.begin(), y.end());
    }
  }
  std::vector<const double*> rows;
  for (const auto& s : streams) rows.push_back(s.data());

  // The lane path rides the default scalar solve_multi: out[l] must equal
  // the per-lane stream bit for bit.
  const auto multi = rec.reconstruct_stream_multi(rows, streams[0].size());
  ASSERT_EQ(multi.size(), lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto single = rec.reconstruct_stream(streams[l]);
    ASSERT_EQ(multi[l].size(), single.size()) << "lane " << l;
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(multi[l][i], single[i]) << "lane " << l << " sample " << i;
    }
  }
}
