// Budgeted pathfinding optimizer: correctness on analytic objectives where
// the true optimum is known, budget accounting, deduplication, and the
// constrained (feasible-first) comparison logic.

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "util/error.hpp"

using namespace efficsense;
using namespace efficsense::core;

namespace {

/// Analytic toy objective over (lna_noise_vrms, adc_bits):
///  power  = 1/noise + bits          (cheaper at high noise, low bits)
///  "accuracy" = 1 - noise*1e5 - 0.02*(8-bits)  (better at low noise, high bits)
EvalMetrics toy_objective(const power::DesignParams& d) {
  EvalMetrics m;
  m.power_w = 1e-6 / (d.lna_noise_vrms * 1e6) + 1e-7 * d.adc_bits;
  m.accuracy = 1.0 - 0.004 * (d.lna_noise_vrms * 1e6) -
               0.02 * (8.0 - d.adc_bits);
  m.snr_db = 40.0 - d.lna_noise_vrms * 1e6;
  return m;
}

DesignSpace toy_space() {
  DesignSpace space;
  space.add_axis("lna_noise_vrms",
                 {1e-6, 2e-6, 3e-6, 4e-6, 5e-6, 6e-6, 8e-6, 10e-6});
  space.add_axis("adc_bits", {6, 7, 8});
  return space;
}

}  // namespace

TEST(Optimizer, FindsConstrainedOptimumOnToyProblem) {
  // Constraint accuracy >= 0.95 with
  //   accuracy(noise_uv, bits) = 1 - 0.004*noise_uv - 0.02*(8-bits),
  //   power(noise_uv, bits)    = 1e-6/noise_uv + 1e-7*bits.
  // Enumerating the grid by hand: the cheapest feasible point is
  // noise = 6 uV, bits = 7 (accuracy 0.956, power 8.67e-7) — cheaper than
  // e.g. (10 uV, 8 bit) at 9.0e-7.
  const PathfindingOptimizer opt(toy_objective, power::DesignParams{},
                                 toy_space());
  OptimizerOptions options;
  options.budget = 24;  // grid size
  options.min_merit = 0.95;
  const auto result = opt.run(options);
  ASSERT_TRUE(result.feasible);
  const auto& best = result.evaluated[result.best];
  EXPECT_DOUBLE_EQ(best.point.at("lna_noise_vrms"), 6e-6);
  EXPECT_DOUBLE_EQ(best.point.at("adc_bits"), 7.0);
}

TEST(Optimizer, RespectsBudget) {
  const PathfindingOptimizer opt(toy_objective, power::DesignParams{},
                                 toy_space());
  OptimizerOptions options;
  options.budget = 7;
  const auto result = opt.run(options);
  EXPECT_LE(result.evaluations(), 7u);
  EXPECT_GE(result.evaluations(), 2u);
}

TEST(Optimizer, NeverEvaluatesDuplicates) {
  std::size_t calls = 0;
  const PathfindingOptimizer opt(
      [&calls](const power::DesignParams& d) {
        ++calls;
        return toy_objective(d);
      },
      power::DesignParams{}, toy_space());
  OptimizerOptions options;
  options.budget = 24;
  const auto result = opt.run(options);
  EXPECT_EQ(calls, result.evaluations());
  // All evaluated points distinct.
  std::set<std::string> keys;
  for (const auto& r : result.evaluated) keys.insert(point_to_string(r.point));
  EXPECT_EQ(keys.size(), result.evaluations());
}

TEST(Optimizer, InfeasibleProblemReportsBestMerit) {
  const PathfindingOptimizer opt(toy_objective, power::DesignParams{},
                                 toy_space());
  OptimizerOptions options;
  options.budget = 24;
  options.min_merit = 2.0;  // unreachable
  const auto result = opt.run(options);
  EXPECT_FALSE(result.feasible);
  // Best-merit point: noise = 1 uV, bits = 8.
  const auto& best = result.evaluated[result.best];
  EXPECT_DOUBLE_EQ(best.point.at("lna_noise_vrms"), 1e-6);
  EXPECT_DOUBLE_EQ(best.point.at("adc_bits"), 8.0);
}

TEST(Optimizer, DeterministicPerSeed) {
  const PathfindingOptimizer opt(toy_objective, power::DesignParams{},
                                 toy_space());
  OptimizerOptions options;
  options.budget = 12;
  const auto a = opt.run(options);
  const auto b = opt.run(options);
  ASSERT_EQ(a.evaluations(), b.evaluations());
  for (std::size_t i = 0; i < a.evaluations(); ++i) {
    EXPECT_EQ(point_to_string(a.evaluated[i].point),
              point_to_string(b.evaluated[i].point));
  }
  options.seed = 99;
  const auto c = opt.run(options);
  bool any_diff = a.evaluations() != c.evaluations();
  for (std::size_t i = 0; !any_diff && i < std::min(a.evaluations(), c.evaluations()); ++i) {
    any_diff = point_to_string(a.evaluated[i].point) !=
               point_to_string(c.evaluated[i].point);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Optimizer, SnrMeritSupported) {
  const PathfindingOptimizer opt(toy_objective, power::DesignParams{},
                                 toy_space());
  OptimizerOptions options;
  options.budget = 24;
  options.merit = Merit::Snr;
  options.min_merit = 32.0;  // snr = 40 - noise_uv -> noise <= 8 uV
  const auto result = opt.run(options);
  ASSERT_TRUE(result.feasible);
  const auto& best = result.evaluated[result.best];
  // Cheapest feasible: the largest noise with snr >= 32 and fewest bits.
  EXPECT_DOUBLE_EQ(best.point.at("lna_noise_vrms"), 8e-6);
  EXPECT_DOUBLE_EQ(best.point.at("adc_bits"), 6.0);
}

TEST(Optimizer, ValidatesConfiguration) {
  EXPECT_THROW(PathfindingOptimizer(nullptr, power::DesignParams{}, toy_space()),
               Error);
  EXPECT_THROW(
      PathfindingOptimizer(toy_objective, power::DesignParams{}, DesignSpace{}),
      Error);
  const PathfindingOptimizer opt(toy_objective, power::DesignParams{},
                                 toy_space());
  OptimizerOptions options;
  options.budget = 1;
  EXPECT_THROW(opt.run(options), Error);
}
