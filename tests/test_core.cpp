// Core pathfinding framework: design spaces, Pareto analysis, chain
// construction and sweep serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "core/chain.hpp"
#include "core/design_space.hpp"
#include "core/pareto.hpp"
#include "core/sweep.hpp"
#include "core/study.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

using namespace efficsense;
using namespace efficsense::core;

TEST(DesignSpace, CartesianEnumeration) {
  DesignSpace space;
  space.add_axis("a", {1, 2, 3}).add_axis("b", {10, 20});
  EXPECT_EQ(space.axis_count(), 2u);
  EXPECT_EQ(space.size(), 6u);
  std::set<std::pair<double, double>> seen;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto p = space.point(i);
    seen.insert({p.at("a"), p.at("b")});
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_THROW(space.point(6), Error);
}

TEST(DesignSpace, EmptySpaceHasOnePoint) {
  DesignSpace space;
  EXPECT_EQ(space.size(), 1u);
  EXPECT_TRUE(space.point(0).empty());
}

TEST(DesignSpace, DuplicateAxisRejected) {
  DesignSpace space;
  space.add_axis("a", {1});
  EXPECT_THROW(space.add_axis("a", {2}), Error);
  EXPECT_THROW(space.add_axis("b", {}), Error);
}

TEST(ApplyAxis, MapsAllSupportedNames) {
  power::DesignParams d;
  apply_axis(d, "lna_noise_vrms", 5e-6);
  apply_axis(d, "adc_bits", 6);
  apply_axis(d, "cs_m", 75);
  apply_axis(d, "cs_c_hold_f", 1e-12);
  apply_axis(d, "dac_c_unit_f", 4e-15);
  apply_axis(d, "cs_sparsity", 3);
  apply_axis(d, "lna_gain", 500);
  EXPECT_DOUBLE_EQ(d.lna_noise_vrms, 5e-6);
  EXPECT_EQ(d.adc_bits, 6);
  EXPECT_EQ(d.cs_m, 75);
  EXPECT_DOUBLE_EQ(d.cs_c_hold_f, 1e-12);
  EXPECT_EQ(d.cs_sparsity, 3);
  EXPECT_THROW(apply_axis(d, "not_a_knob", 1.0), Error);
}

TEST(ApplyPoint, OverridesOnlyNamedFields) {
  power::DesignParams base;
  const auto d = apply_point(base, {{"adc_bits", 6.0}});
  EXPECT_EQ(d.adc_bits, 6);
  EXPECT_DOUBLE_EQ(d.lna_noise_vrms, base.lna_noise_vrms);
}

TEST(PointString, RoundTrip) {
  const PointValues p{{"a", 1.5}, {"b", 2e-12}};
  const auto parsed = parse_point(point_to_string(p));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.at("a"), 1.5);
  EXPECT_NEAR(parsed.at("b"), 2e-12, 1e-18);
  EXPECT_TRUE(parse_point("").empty());
  EXPECT_THROW(parse_point("malformed"), Error);
}

TEST(Pareto, FrontIsNonDominatedAndSorted) {
  std::vector<Candidate> cands = {
      {1.0, 5.0, 0}, {2.0, 4.0, 1},  // dominated by 0
      {2.0, 7.0, 2}, {3.0, 7.0, 3},  // 3 dominated by 2
      {4.0, 9.0, 4},
  };
  const auto front = pareto_front(cands);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].tag, 0u);
  EXPECT_EQ(front[1].tag, 2u);
  EXPECT_EQ(front[2].tag, 4u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].cost, front[i - 1].cost);
    EXPECT_GT(front[i].merit, front[i - 1].merit);
  }
}

TEST(Pareto, PropertyNoFrontMemberDominated) {
  // Pseudo-random candidate cloud; verify the front's invariant.
  std::vector<Candidate> cands;
  std::uint64_t s = 12345;
  for (std::size_t i = 0; i < 200; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double cost = static_cast<double>((s >> 33) % 1000) / 10.0;
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double merit = static_cast<double>((s >> 33) % 1000) / 10.0;
    cands.push_back({cost, merit, i});
  }
  const auto front = pareto_front(cands);
  for (const auto& f : front) {
    for (const auto& c : cands) {
      const bool dominates = (c.cost <= f.cost && c.merit >= f.merit) &&
                             (c.cost < f.cost || c.merit > f.merit);
      EXPECT_FALSE(dominates) << "front member " << f.tag << " dominated by "
                              << c.tag;
    }
  }
}

TEST(Pareto, CheapestWithMerit) {
  const std::vector<Candidate> cands = {
      {10.0, 0.99, 0}, {5.0, 0.985, 1}, {2.0, 0.97, 2}};
  const auto best = cheapest_with_merit(cands, 0.98);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->tag, 1u);
  EXPECT_FALSE(cheapest_with_merit(cands, 0.999).has_value());
}

TEST(Pareto, BestMeritWhere) {
  const std::vector<Candidate> cands = {
      {10.0, 0.99, 0}, {5.0, 0.95, 1}, {2.0, 0.97, 2}};
  const auto best = best_merit_where(
      cands, [](const Candidate& c) { return c.cost < 6.0; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->tag, 2u);
  const auto none = best_merit_where(
      cands, [](const Candidate& c) { return c.cost < 0.0; });
  EXPECT_FALSE(none.has_value());
}

TEST(Chain, BaselineStructure) {
  const power::TechnologyParams tech;
  power::DesignParams d;
  const auto chain = build_baseline_chain(tech, d, {});
  EXPECT_EQ(chain->num_blocks(), 5u);
  for (const char* name : {kSourceBlock, kLnaBlock, kSampleHoldBlock,
                           kAdcBlock, kTxBlock}) {
    EXPECT_TRUE(chain->has_block(name)) << name;
  }
  EXPECT_FALSE(chain->has_block(kCsEncoderBlock));
}

TEST(Chain, CsStructure) {
  const power::TechnologyParams tech;
  power::DesignParams d;
  d.cs_m = 75;
  const auto chain = build_cs_chain(tech, d, {});
  EXPECT_TRUE(chain->has_block(kCsEncoderBlock));
  EXPECT_FALSE(chain->has_block(kSampleHoldBlock));
  // build_chain dispatches on uses_cs().
  EXPECT_TRUE(build_chain(tech, d, {})->has_block(kCsEncoderBlock));
  d.cs_m = 0;
  EXPECT_FALSE(build_chain(tech, d, {})->has_block(kCsEncoderBlock));
  d.cs_m = 75;
  d.cs_m = 0;
  EXPECT_THROW(build_cs_chain(tech, d, {}), Error);
}

TEST(Chain, RunProducesSampledOutput) {
  const power::TechnologyParams tech;
  power::DesignParams d;
  auto chain = build_baseline_chain(tech, d, {});
  const sim::Waveform input(2048.0, std::vector<double>(2048 * 2, 1e-4));
  const auto out = run_chain(*chain, input);
  EXPECT_DOUBLE_EQ(out.fs, d.f_sample_hz());
  EXPECT_EQ(out.size(), static_cast<std::size_t>(2.0 * d.f_sample_hz()));
}

TEST(Chain, MatchedReconstructorDimensions) {
  power::DesignParams d;
  d.cs_m = 96;
  const auto rec = make_matched_reconstructor(d, {});
  EXPECT_EQ(rec.measurements_per_frame(), 96u);
  EXPECT_EQ(rec.frame_length(), 384u);
  d.cs_m = 0;
  EXPECT_THROW(make_matched_reconstructor(d, {}), Error);
}

TEST(SweepCsv, RoundTrip) {
  SweepResult r;
  r.point = {{"adc_bits", 8.0}, {"lna_noise_vrms", 3e-6}};
  r.design = apply_point(power::DesignParams{}, r.point);
  r.metrics.snr_db = 21.5;
  r.metrics.accuracy = 0.975;
  r.metrics.power_w = 4.2e-6;
  r.metrics.area_unit_caps = 1234.0;
  r.metrics.segments_evaluated = 40;
  r.metrics.power_breakdown.add("lna", 1e-6);
  r.metrics.power_breakdown.add("tx", 3.2e-6);
  r.metrics.area_breakdown.add("adc", 1234.0);

  const auto csv = sweep_to_csv({r});
  const auto back = sweep_from_csv(csv, power::DesignParams{});
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].design.adc_bits, 8);
  EXPECT_DOUBLE_EQ(back[0].metrics.snr_db, 21.5);
  EXPECT_DOUBLE_EQ(back[0].metrics.accuracy, 0.975);
  EXPECT_DOUBLE_EQ(back[0].metrics.power_breakdown.watts_of("tx"), 3.2e-6);
  EXPECT_DOUBLE_EQ(back[0].metrics.area_breakdown.caps_of("adc"), 1234.0);
  EXPECT_EQ(back[0].metrics.segments_evaluated, 40u);
}

TEST(SweepCsv, RejectsGarbage) {
  EXPECT_THROW(sweep_from_csv("", power::DesignParams{}), Error);
  EXPECT_THROW(sweep_from_csv("wrong,header\n", power::DesignParams{}), Error);
}

TEST(SweepCsv, SkipsMalformedRows) {
  // A cache file corrupted mid-write (truncated row) or bit-flipped
  // (non-numeric field) must not take the whole sweep down: good rows
  // load, bad rows are skipped with a warning.
  std::vector<SweepResult> results(3);
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& r = results[i];
    r.point = {{"adc_bits", 6.0 + double(i)}};
    r.design = apply_point(power::DesignParams{}, r.point);
    r.metrics.snr_db = 10.0 + double(i);
    r.metrics.accuracy = 0.9;
    r.metrics.power_w = 1e-6;
    r.metrics.segments_evaluated = 4;
  }
  const auto csv = sweep_to_csv(results);
  std::vector<std::string> lines;
  std::istringstream in(csv);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // header + 3 rows

  // Corrupt row 2 with garbage and truncate row 3 (as a torn write would).
  const auto comma = lines[2].find(',');
  lines[2] = "not_a_number" + lines[2].substr(comma);
  lines[3] = lines[3].substr(0, lines[3].size() / 2);
  std::string corrupted;
  for (const auto& line : lines) corrupted += line + "\n";

  const auto before = efficsense::obs::counter("sweep_csv/rows_skipped").value();
  const auto back = sweep_from_csv(corrupted, power::DesignParams{});
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].design.adc_bits, 6);
  EXPECT_DOUBLE_EQ(back[0].metrics.snr_db, 10.0);
  EXPECT_EQ(efficsense::obs::counter("sweep_csv/rows_skipped").value(),
            before + 2);
}

TEST(StudyConfig, CacheKeyDependsOnEverything) {
  StudyConfig a, b;
  EXPECT_EQ(a.cache_key("x"), b.cache_key("x"));
  EXPECT_NE(a.cache_key("x"), a.cache_key("y"));
  b.eval_segments += 1;
  EXPECT_NE(a.cache_key("x"), b.cache_key("x"));
  b = a;
  b.noise_grid_uv.push_back(25.0);
  EXPECT_NE(a.cache_key("x"), b.cache_key("x"));
}

TEST(MakeCandidates, SelectsMerit) {
  SweepResult r;
  r.metrics.snr_db = 12.0;
  r.metrics.accuracy = 0.9;
  r.metrics.power_w = 1e-6;
  const auto snr = make_candidates({r}, Merit::Snr);
  const auto acc = make_candidates({r}, Merit::Accuracy);
  EXPECT_DOUBLE_EQ(snr[0].merit, 12.0);
  EXPECT_DOUBLE_EQ(acc[0].merit, 0.9);
  EXPECT_DOUBLE_EQ(snr[0].cost, 1e-6);
}

#include "core/monte_carlo.hpp"

TEST(MonteCarloStats, HandComputed) {
  const auto s = compute_stats({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_THROW(compute_stats({}), Error);
}

// ---------------------------------------------------------------------------
// Cross-point reconstructor cache: Monte-Carlo instances redraw mismatch and
// noise seeds but share the sensing matrix, so they must share one cached
// reconstructor (and thus one Gram build).

#include "core/recon_cache.hpp"

TEST(ReconstructorCache, SharedAcrossMismatchAndNoiseSeeds) {
  auto& cache = ReconstructorCache::instance();
  cache.clear();
  power::DesignParams design;
  design.adc_bits = 8;
  design.cs_m = 40;  // small CS design so the build is cheap

  ChainSeeds seeds1;
  seeds1.phi = 123;
  seeds1.mismatch = 1;
  seeds1.noise = 2;
  ChainSeeds seeds2 = seeds1;
  seeds2.mismatch = 99;  // a different fabricated instance...
  seeds2.noise = 77;     // ...with fresh noise streams

  cs::ReconstructorConfig cfg;
  cfg.residual_tol = 0.02;

  const auto hits0 = efficsense::obs::counter("omp/cache_hits").value();
  const auto builds0 = efficsense::obs::counter("omp/gram_builds").value();
  const auto r1 = cache.get(design, seeds1, cfg);
  const auto r2 = cache.get(design, seeds2, cfg);
  EXPECT_EQ(r1.get(), r2.get());  // one shared reconstructor
  EXPECT_EQ(efficsense::obs::counter("omp/gram_builds").value(), builds0 + 1);
  EXPECT_EQ(efficsense::obs::counter("omp/cache_hits").value(), hits0 + 1);
  EXPECT_EQ(cache.size(), 1u);

  ChainSeeds seeds3 = seeds1;
  seeds3.phi = 456;  // a different sensing-matrix draw is a different entry
  const auto r3 = cache.get(design, seeds3, cfg);
  EXPECT_NE(r3.get(), r1.get());
  EXPECT_EQ(efficsense::obs::counter("omp/gram_builds").value(), builds0 + 2);
  EXPECT_EQ(cache.size(), 2u);

  cs::ReconstructorConfig cfg2 = cfg;
  cfg2.omp_mode = cs::OmpMode::Naive;  // solver config is part of the key
  const auto r4 = cache.get(design, seeds1, cfg2);
  EXPECT_NE(r4.get(), r1.get());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ReconstructorCache, KeyCoversPhiAndConfig) {
  power::DesignParams design;
  design.cs_m = 40;
  ChainSeeds a, b;
  cs::ReconstructorConfig cfg;
  EXPECT_EQ(reconstructor_cache_key(design, a, cfg),
            reconstructor_cache_key(design, b, cfg));
  b.mismatch = 999;
  b.noise = 888;
  EXPECT_EQ(reconstructor_cache_key(design, a, cfg),
            reconstructor_cache_key(design, b, cfg));
  b.phi = 777;
  EXPECT_NE(reconstructor_cache_key(design, a, cfg),
            reconstructor_cache_key(design, b, cfg));
  cs::ReconstructorConfig cfg2 = cfg;
  cfg2.residual_tol *= 2.0;
  EXPECT_NE(reconstructor_cache_key(design, a, cfg),
            reconstructor_cache_key(design, a, cfg2));
  power::DesignParams design2 = design;
  design2.cs_m = 50;
  EXPECT_NE(reconstructor_cache_key(design, a, cfg),
            reconstructor_cache_key(design2, a, cfg));
}
