// FFT correctness: impulse/sine spectra, Parseval, round trips, Bluestein
// (arbitrary length) against a naive DFT reference.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "dsp/windows.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;
using dsp::Complex;

namespace {

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      sum += x[t] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = sum;
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  return x;
}

}  // namespace

TEST(Fft, IsPow2) {
  EXPECT_TRUE(dsp::is_pow2(1));
  EXPECT_TRUE(dsp::is_pow2(256));
  EXPECT_FALSE(dsp::is_pow2(0));
  EXPECT_FALSE(dsp::is_pow2(384));
}

TEST(Fft, ImpulseIsFlat) {
  std::vector<Complex> x(64, Complex(0, 0));
  x[0] = Complex(1, 0);
  const auto spec = dsp::fft(x);
  for (const auto& v : spec) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SinePeaksAtItsBin) {
  const std::size_t n = 256;
  std::vector<Complex> x(n);
  const int bin = 17;
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = Complex(std::sin(2.0 * std::numbers::pi * bin *
                            static_cast<double>(t) / static_cast<double>(n)),
                   0.0);
  }
  const auto spec = dsp::fft(x);
  EXPECT_NEAR(std::abs(spec[bin]), n / 2.0, 1e-9);
  // All other bins (except the conjugate) are ~0.
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin || k == n - bin) continue;
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-8);
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  const auto n = GetParam();
  const auto x = random_signal(n, n);
  const auto back = dsp::ifft(dsp::fft(x));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const auto n = GetParam();
  const auto x = random_signal(n, 1000 + n);
  const auto spec = dsp::fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

TEST_P(FftRoundTrip, MatchesNaiveDft) {
  const auto n = GetParam();
  if (n > 600) GTEST_SKIP() << "naive DFT too slow";
  const auto x = random_signal(n, 7 * n);
  const auto fast = dsp::fft(x);
  const auto slow = naive_dft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-7);
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(8, 64, 100, 384, 173, 512, 1000));

TEST(Fft, AmplitudeSpectrumScaling) {
  const std::size_t n = 512;
  const double amp = 0.75;
  const int bin = 20;
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = amp * std::cos(2.0 * std::numbers::pi * bin *
                          static_cast<double>(t) / static_cast<double>(n));
  }
  const auto spec = dsp::amplitude_spectrum(x);
  EXPECT_EQ(spec.size(), n / 2 + 1);
  EXPECT_NEAR(spec[bin], amp, 1e-9);
}

TEST(Fft, EmptyThrows) {
  EXPECT_THROW(dsp::fft({}), Error);
  EXPECT_THROW(dsp::ifft({}), Error);
}

TEST(Windows, CoherentGainOfRectIsOne) {
  const auto w = dsp::make_window(dsp::WindowKind::Rectangular, 128);
  EXPECT_DOUBLE_EQ(dsp::window_coherent_gain(w), 1.0);
  EXPECT_DOUBLE_EQ(dsp::window_noise_gain(w), 1.0);
}

TEST(Windows, HannProperties) {
  const auto w = dsp::make_window(dsp::WindowKind::Hann, 256);
  EXPECT_NEAR(dsp::window_coherent_gain(w), 0.5, 1e-12);
  EXPECT_NEAR(dsp::window_noise_gain(w), 0.375, 1e-12);
  // Periodic Hann starts at 0 and peaks mid-window.
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[128], 1.0, 1e-12);
}

TEST(Windows, AllKindsHavePositiveGain) {
  for (auto kind : {dsp::WindowKind::Rectangular, dsp::WindowKind::Hann,
                    dsp::WindowKind::Hamming, dsp::WindowKind::BlackmanHarris,
                    dsp::WindowKind::FlatTop}) {
    const auto w = dsp::make_window(kind, 64);
    EXPECT_GT(dsp::window_coherent_gain(w), 0.0);
    EXPECT_GT(dsp::window_noise_gain(w), 0.0);
  }
}

TEST(Windows, FromName) {
  EXPECT_EQ(dsp::window_from_name("hann"), dsp::WindowKind::Hann);
  EXPECT_EQ(dsp::window_from_name("bh"), dsp::WindowKind::BlackmanHarris);
  EXPECT_THROW(dsp::window_from_name("nope"), Error);
}
