// Unit tests for the observability layer: metrics registry, trace spans,
// structured logging and the bench sidecar.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/error.hpp"

using namespace efficsense;

namespace {

/// Minimal structural JSON check: balanced braces/brackets outside strings.
bool json_balanced(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

}  // namespace

TEST(Metrics, CounterGaugeBasics) {
  auto& c = obs::counter("test/counter_basics");
  const auto before = c.value();
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), before + 5);

  auto& g = obs::gauge("test/gauge_basics");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, SameNameSameInstrument) {
  auto& a = obs::counter("test/same_name");
  auto& b = obs::counter("test/same_name");
  EXPECT_EQ(&a, &b);
  // Different kinds may share a name without clashing.
  obs::gauge("test/same_name").set(1.0);
  EXPECT_EQ(&a, &obs::counter("test/same_name"));
}

TEST(Metrics, HistogramBucketsAndMoments) {
  const std::vector<double> bounds{1.0, 10.0, 100.0};
  auto& h = obs::histogram("test/hist_buckets", &bounds);
  for (double v : {0.5, 0.7, 5.0, 50.0, 500.0}) h.observe(v);
  const auto s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2u);  // <= 1
  EXPECT_EQ(s.buckets[1], 1u);  // <= 10
  EXPECT_EQ(s.buckets[2], 1u);  // <= 100
  EXPECT_EQ(s.buckets[3], 1u);  // overflow
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 556.2);
  EXPECT_DOUBLE_EQ(h.mean(), 556.2 / 5.0);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), Error);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), Error);
}

TEST(Metrics, ThreadedUpdatesAreLossless) {
  auto& c = obs::counter("test/threaded_counter");
  const std::vector<double> bounds{0.5};
  auto& h = obs::histogram("test/threaded_hist", &bounds);
  const auto h_before = h.count();
  const auto c_before = c.value();
  constexpr int kThreads = 8, kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value() - c_before, kThreads * kIters);
  EXPECT_EQ(h.count() - h_before, kThreads * kIters);
}

TEST(Metrics, SnapshotListsEveryKind) {
  obs::counter("test/snap_counter").inc();
  obs::gauge("test/snap_gauge").set(4.0);
  obs::histogram("test/snap_hist").observe(1e-3);
  const auto snap = obs::Registry::instance().snapshot();
  auto has = [](const auto& entries, const std::string& name) {
    for (const auto& [n, v] : entries) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(snap.counters, "test/snap_counter"));
  EXPECT_TRUE(has(snap.gauges, "test/snap_gauge"));
  EXPECT_TRUE(has(snap.histograms, "test/snap_hist"));
  const auto text = obs::Registry::instance().to_string();
  EXPECT_NE(text.find("test/snap_counter"), std::string::npos);
  EXPECT_NE(text.find("test/snap_gauge"), std::string::npos);
}

TEST(Trace, SpansRecordNameThreadAndDuration) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  tracer.clear();
  {
    EFFICSENSE_SPAN("test/outer");
    EFFICSENSE_SPAN("test/", std::string("inner"));
  }
  std::thread([] { EFFICSENSE_SPAN("test/worker"); }).join();
  tracer.set_enabled(false);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // Buffers flush per thread, so look events up by name rather than order.
  auto find = [&](const std::string& n) -> const obs::TraceEvent* {
    for (const auto& e : events) {
      if (e.name == n) return &e;
    }
    return nullptr;
  };
  const auto* inner = find("test/inner");
  const auto* outer = find("test/outer");
  const auto* worker = find("test/worker");
  ASSERT_TRUE(inner && outer && worker);
  EXPECT_GE(outer->dur_ns, inner->dur_ns);  // outer encloses inner
  EXPECT_GE(outer->start_ns, 0);
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_NE(worker->tid, inner->tid);
  EXPECT_EQ(inner->tid, outer->tid);
  tracer.clear();
}

TEST(Trace, SpansAreFreeWhenDisabled) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  { EFFICSENSE_SPAN("test/disabled"); }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Trace, ChromeJsonIsStructurallyValid) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  tracer.clear();
  { EFFICSENSE_SPAN("json/a"); }
  { EFFICSENSE_SPAN("json/\"quoted\""); }
  tracer.set_enabled(false);
  const auto json = tracer.to_chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("json/a"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  tracer.clear();
}

TEST(Trace, SummaryAggregatesByName) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  tracer.clear();
  for (int i = 0; i < 3; ++i) {
    EFFICSENSE_SPAN("agg/block");
  }
  tracer.set_enabled(false);
  const auto aggs = tracer.aggregate();
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].name, "agg/block");
  EXPECT_EQ(aggs[0].count, 3u);
  const auto text = tracer.summary();
  EXPECT_NE(text.find("block"), std::string::npos);
  EXPECT_NE(text.find("3 spans"), std::string::npos);
  tracer.clear();
}

TEST(Log, LevelFilteringAndKv) {
  std::vector<std::string> lines;
  obs::set_log_sink([&](const std::string& line) { lines.push_back(line); });
  obs::set_log_level(obs::LogLevel::Warn);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Error));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Warn));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Info));

  EFFICSENSE_LOG_WARN("something happened", {{"rows", obs::logv(7)}});
  EFFICSENSE_LOG_INFO("filtered out");
  EFFICSENSE_LOG_DEBUG("also filtered");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("something happened"), std::string::npos);
  EXPECT_NE(lines[0].find("rows=7"), std::string::npos);
  EXPECT_NE(lines[0].find("warn"), std::string::npos);

  obs::set_log_level(obs::LogLevel::Debug);
  EFFICSENSE_LOG_DEBUG("now visible", {{"x", obs::logv(1.5)}});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("x=1.5"), std::string::npos);

  obs::set_log_sink(nullptr);
  obs::set_log_level(obs::LogLevel::Warn);
}

TEST(Sidecar, WritesValidJsonWithExpectedFields) {
  // Populate the registry with the fields the sidecar summarizes.
  obs::counter("sweep_cache/hits").inc(2);
  obs::histogram("time/block/lna").observe(0.25);
  obs::histogram("time/block/adc").observe(0.125);

  obs::BenchRun run("obs_selftest");
  run.set_points(42);
  run.add_field("snr_db", 12.5);
  const auto json = run.to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"bench\": \"obs_selftest\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_s\""), std::string::npos);
  EXPECT_NE(json.find("\"points\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"points_per_s\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"hottest_blocks\""), std::string::npos);
  EXPECT_NE(json.find("\"block\": \"lna\""), std::string::npos);
  EXPECT_NE(json.find("\"snr_db\": 12.5"), std::string::npos);

  run.write();
  std::ifstream in(run.path());
  ASSERT_TRUE(in.good());
  std::ostringstream blob;
  blob << in.rdbuf();
  EXPECT_TRUE(json_balanced(blob.str()));
  in.close();
  std::filesystem::remove(run.path());
}

TEST(Sidecar, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb"), "a\\nb");
}

// ---------------------------------------------------------------------------
// Histogram percentiles (telemetry v2)

TEST(Percentiles, EmptyHistogramReturnsZero) {
  obs::Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(0.99), 0.0);
}

TEST(Percentiles, InterpolatesWithinBucketsAgainstExactQuantiles) {
  // Uniform samples over (0, 10] with bucket bounds every 1.0: the
  // interpolated estimate must land within one bucket width of the exact
  // sample quantile for every q.
  std::vector<double> bounds;
  for (int i = 1; i <= 10; ++i) bounds.push_back(static_cast<double>(i));
  obs::Histogram h(bounds);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back((i % 100) * 0.1 + 0.05);  // 0.05, 0.15, ..., 9.95
  }
  for (const double v : samples) h.observe(v);
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const double exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    EXPECT_NEAR(h.percentile(q), exact, 1.0)
        << "q=" << q << " estimate " << h.percentile(q) << " exact " << exact;
  }
  // Percentiles are monotone in q.
  EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
  EXPECT_LE(h.percentile(0.9), h.percentile(0.99));
}

TEST(Percentiles, OverflowBucketClampsToHighestBound) {
  obs::Histogram h({1.0, 2.0});
  for (int i = 0; i < 100; ++i) h.observe(50.0);  // everything overflows
  EXPECT_EQ(h.percentile(0.5), 2.0);
  EXPECT_EQ(h.percentile(0.99), 2.0);
}

TEST(Percentiles, SnapshotSummarize) {
  obs::Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 10; ++i) h.observe(0.5);
  const auto stats = obs::summarize(h.snapshot());
  EXPECT_EQ(stats.count, 10u);
  EXPECT_DOUBLE_EQ(stats.sum, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.5);
  EXPECT_GT(stats.p50, 0.0);
  EXPECT_LE(stats.p50, 1.0);
  EXPECT_LE(stats.p50, stats.p90);
  EXPECT_LE(stats.p90, stats.p99);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot + Prometheus exporter

TEST(Snapshot, CapturesCountersHistogramsAndRss) {
  obs::counter("snaptest/counter").inc(3);
  obs::histogram("snaptest/latency").observe(0.001);
  const auto snap = obs::MetricsSnapshot::capture();
  EXPECT_GT(snap.taken_unix_s, 1.0e9);  // sane wall clock
  EXPECT_GT(snap.rss_bytes, 0.0);      // /proc/self/statm exists on linux
  EXPECT_GE(snap.counter("snaptest/counter"), 3u);
  ASSERT_NE(snap.histogram("snaptest/latency"), nullptr);
  const auto stats = snap.stats("snaptest/latency");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->count, 1u);
  EXPECT_EQ(snap.histogram("snaptest/absent"), nullptr);
  EXPECT_FALSE(snap.stats("snaptest/absent").has_value());
  EXPECT_EQ(snap.counter("snaptest/absent"), 0u);
}

TEST(Exporter, PrometheusTextFormat) {
  obs::counter("promtest/events").inc(7);
  obs::gauge("promtest/depth").set(2.5);
  obs::histogram("promtest/lat", nullptr).observe(0.5);
  const auto text = obs::export_prometheus();

  // Names are sanitized into the efficsense_ namespace.
  EXPECT_NE(text.find("# TYPE efficsense_promtest_events counter"),
            std::string::npos);
  EXPECT_NE(text.find("efficsense_promtest_events 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE efficsense_promtest_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("efficsense_promtest_depth 2.5"), std::string::npos);
  // Histograms expose cumulative buckets, +Inf, _sum and _count.
  EXPECT_NE(text.find("# TYPE efficsense_promtest_lat histogram"),
            std::string::npos);
  EXPECT_NE(text.find("efficsense_promtest_lat_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("efficsense_promtest_lat_sum"), std::string::npos);
  EXPECT_NE(text.find("efficsense_promtest_lat_count"), std::string::npos);
  // Process RSS rides along.
  EXPECT_NE(text.find("efficsense_process_resident_memory_bytes"),
            std::string::npos);
  // Every non-comment line is "name{labels} value" or "name value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find("efficsense_"), 0u) << line;
  }
}

TEST(Exporter, CumulativeBucketsAreMonotone) {
  auto& h = obs::histogram("promtest/mono");
  for (int i = 0; i < 50; ++i) h.observe(0.001 * (i + 1));
  const auto snap = obs::MetricsSnapshot::capture();
  const auto text = obs::export_prometheus(snap);
  // Extract the bucket counts for promtest/mono in order; they must be
  // non-decreasing and end at _count.
  std::istringstream lines(text);
  std::string line;
  long long prev = -1, count = -1;
  while (std::getline(lines, line)) {
    if (line.rfind("efficsense_promtest_mono_bucket", 0) == 0) {
      const auto space = line.rfind(' ');
      const long long v = std::stoll(line.substr(space + 1));
      EXPECT_GE(v, prev) << line;
      prev = v;
    } else if (line.rfind("efficsense_promtest_mono_count", 0) == 0) {
      count = std::stoll(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_GE(prev, 0);
  EXPECT_EQ(prev, count) << "+Inf bucket must equal _count";
}
