// Unit tests for the util substrate: RNG, CSV/tables, cache, env knobs and
// the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>

#include "util/cache.hpp"
#include "util/constants.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace efficsense;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianMeanStd) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be equal
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(1234);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
  // Splitting again with the same stream id reproduces the stream.
  Rng a2 = parent.split(0);
  Rng a3 = parent.split(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a2(), a3());
}

TEST(Rng, SplitSeedMatchesDeriveSeed) {
  // The batched chain builders rely on this identity: the lane stream
  // split() hands out is seeded with exactly the value a scalar block
  // passes to its own constructor via derive_seed — so lane i's RNG is
  // independent of the lane width it rides in.
  Rng parent(0xFAB);
  EXPECT_EQ(parent.split(3).seed(), derive_seed(0xFAB, 3));
  Rng split = parent.split(3);
  Rng direct(derive_seed(0xFAB, 3));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(split(), direct());
}

TEST(Rng, SplitResetsCachedGaussian) {
  // Box-Muller caches the second variate. split() must hand out a stream
  // whose gaussian sequence matches a freshly seeded generator even when
  // the parent has a variate cached — a lane inheriting half a draw would
  // silently desynchronize from its scalar oracle.
  Rng parent(0xFAB);
  (void)parent.gaussian();  // leaves the second Box-Muller variate cached
  Rng stream = parent.split(7);
  Rng fresh(derive_seed(0xFAB, 7));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(stream.gaussian()),
              std::bit_cast<std::uint64_t>(fresh.gaussian()));
  }
}

TEST(Rng, DeriveSeedStable) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(1, 3));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 2));
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriterRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.row(std::vector<std::string>{"1", "x,y"});
  w.row(std::vector<double>{2.5, 1e-9});
  EXPECT_EQ(w.rows_written(), 2u);
  const std::string out = os.str();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
}

TEST(Csv, WidthMismatchThrows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  EXPECT_THROW(w.row(std::vector<std::string>{"only-one"}), Error);
}

TEST(Csv, FormatNumber) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(1.5), "1.5");
  EXPECT_NE(format_number(2.44e-6).find("e-06"), std::string::npos);
}

TEST(Csv, FormatPower) {
  EXPECT_EQ(format_power(2.44e-6), "2.44 uW");
  EXPECT_EQ(format_power(1.0e-3), "1 mW");
  EXPECT_EQ(format_power(5.0e-9), "5 nW");
}

TEST(Table, AlignedOutput) {
  TablePrinter t({"name", "value"});
  t.add_row(std::vector<std::string>{"x", "1"});
  t.add_row(std::vector<double>{3.25, 7.0});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_NE(os.str().find("name"), std::string::npos);
  EXPECT_NE(os.str().find("3.25"), std::string::npos);
}

TEST(Cache, StoreLoadErase) {
  const std::string dir = "test_cache_tmp";
  FileCache cache(dir);
  EXPECT_FALSE(cache.load("missing").has_value());
  cache.store("key-1", "hello world");
  auto loaded = cache.load("key-1");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "hello world");
  cache.erase("key-1");
  EXPECT_FALSE(cache.load("key-1").has_value());
  std::filesystem::remove_all(dir);
}

TEST(Cache, DifferentKeysDifferentFiles) {
  const std::string dir = "test_cache_tmp2";
  FileCache cache(dir);
  cache.store("a", "1");
  cache.store("b", "2");
  EXPECT_EQ(*cache.load("a"), "1");
  EXPECT_EQ(*cache.load("b"), "2");
  std::filesystem::remove_all(dir);
}

TEST(Cache, Fnv1aStable) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
}

TEST(Env, ParsesValues) {
  ::setenv("EFF_TEST_INT", "42", 1);
  ::setenv("EFF_TEST_DBL", "2.5", 1);
  ::setenv("EFF_TEST_BOOL", "yes", 1);
  EXPECT_EQ(env_int("EFF_TEST_INT", 0), 42);
  EXPECT_DOUBLE_EQ(env_double("EFF_TEST_DBL", 0.0), 2.5);
  EXPECT_TRUE(env_bool("EFF_TEST_BOOL", false));
  ::unsetenv("EFF_TEST_INT");
  ::unsetenv("EFF_TEST_DBL");
  ::unsetenv("EFF_TEST_BOOL");
}

TEST(Env, FallsBackOnMissingOrInvalid) {
  ::unsetenv("EFF_TEST_NONE");
  EXPECT_EQ(env_int("EFF_TEST_NONE", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("EFF_TEST_NONE", 1.5), 1.5);
  EXPECT_FALSE(env_bool("EFF_TEST_NONE", false));
  ::setenv("EFF_TEST_BAD", "not-a-number", 1);
  EXPECT_EQ(env_int("EFF_TEST_BAD", 9), 9);
  ::unsetenv("EFF_TEST_BAD");
}

TEST(Env, StringValues) {
  ::setenv("EFF_TEST_STR", "trace.json", 1);
  EXPECT_EQ(env_string("EFF_TEST_STR", ""), "trace.json");
  ::unsetenv("EFF_TEST_STR");
  EXPECT_EQ(env_string("EFF_TEST_STR", "fallback"), "fallback");
  // An empty value is a present-but-empty string, not a fallback.
  ::setenv("EFF_TEST_STR", "", 1);
  EXPECT_EQ(env_string("EFF_TEST_STR", "fallback"), "");
  ::unsetenv("EFF_TEST_STR");
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, StatsAccountForAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  pool.parallel_for(64, [&](std::size_t) {
    ran.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  });
  EXPECT_EQ(ran.load(), 64);

  // parallel_for queues one helper task per worker; the workers may finish
  // draining them just after the call returns, so poll briefly for the
  // steady state: empty queue, idle workers, 3 completed helper tasks.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  ThreadPool::Stats stats;
  for (;;) {
    stats = pool.stats();
    const bool settled = stats.queue_depth == 0 && stats.busy_workers == 0 &&
                         stats.tasks_completed == 3u;
    if (settled || std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.busy_workers, 0u);
  EXPECT_EQ(stats.tasks_completed, 3u);
  ASSERT_EQ(stats.worker_tasks.size(), 3u);
  ASSERT_EQ(stats.worker_busy_s.size(), 3u);
  std::uint64_t sum = 0;
  for (auto t : stats.worker_tasks) sum += t;
  EXPECT_EQ(sum, stats.tasks_completed);
  for (double s : stats.worker_busy_s) EXPECT_GE(s, 0.0);
  // Utilization is busy time over worker-count x wall time: well-defined
  // and zero for degenerate wall times.
  EXPECT_GE(stats.utilization(10.0), 0.0);
  EXPECT_LE(stats.utilization(10.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.utilization(0.0), 0.0);
}

TEST(Constants, PhysicallyPlausible) {
  EXPECT_NEAR(units::kT, 4.14e-21, 0.05e-21);
  EXPECT_DOUBLE_EQ(units::kBoltzmann * units::kRoomTemperature, units::kT);
}

TEST(Error, RequireMacroThrowsWithMessage) {
  try {
    EFF_REQUIRE(false, "context here");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
  }
}
