// Cross-cutting property sweeps: monotonicities and invariants of the power
// models, the reconstruction pipeline and the feature extraction, checked
// over parameter grids rather than single points.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "classify/features.hpp"
#include "cs/basis.hpp"
#include "cs/effective.hpp"
#include "cs/omp.hpp"
#include "cs/reconstructor.hpp"
#include "dsp/metrics.hpp"
#include "power/area.hpp"
#include "power/models.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;
using power::CsStyle;
using power::DesignParams;
using power::TechnologyParams;

// --- Power-model monotonicity over grids -------------------------------------

class BitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitsSweep, AllAdcComponentsGrowWithResolution) {
  const TechnologyParams tech;
  const int n = GetParam();
  DesignParams lo, hi;
  lo.adc_bits = n;
  hi.adc_bits = n + 1;
  EXPECT_LT(power::sample_hold_power(tech, lo), power::sample_hold_power(tech, hi));
  EXPECT_LT(power::comparator_power(tech, lo), power::comparator_power(tech, hi));
  EXPECT_LT(power::sar_logic_power(tech, lo), power::sar_logic_power(tech, hi));
  EXPECT_LT(power::transmitter_power(tech, lo), power::transmitter_power(tech, hi));
  EXPECT_LT(power::capacitor_area(tech, lo).total(),
            power::capacitor_area(tech, hi).total());
}

INSTANTIATE_TEST_SUITE_P(Resolutions, BitsSweep, ::testing::Values(4, 6, 8, 10, 12));

class BandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthSweep, EveryBlockPowerScalesUpWithRate) {
  const TechnologyParams tech;
  DesignParams lo, hi;
  lo.bw_in_hz = GetParam();
  hi.bw_in_hz = 2.0 * GetParam();
  for (auto fn : {power::sample_hold_power, power::comparator_power,
                  power::sar_logic_power, power::dac_power,
                  power::transmitter_power}) {
    EXPECT_LT(fn(tech, lo), fn(tech, hi)) << "bw " << GetParam();
  }
  // The LNA noise branch also scales with BW_LNA = 3 BW_in.
  EXPECT_LT(power::lna_power(tech, lo), power::lna_power(tech, hi));
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, BandwidthSweep,
                         ::testing::Values(256.0, 1e3, 1e4, 1e5));

class CompressionSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompressionSweep, TxPowerProportionalToM) {
  const TechnologyParams tech;
  DesignParams d;
  d.cs_m = GetParam();
  const double expected =
      DesignParams{}.bit_rate() * tech.e_bit_j * d.compression_ratio();
  EXPECT_NEAR(power::transmitter_power(tech, d), expected, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Measurements, CompressionSweep,
                         ::testing::Values(48, 75, 96, 150, 192, 300));

TEST(AreaModelStyles, CountsTheRightCapacitors) {
  const TechnologyParams tech;
  DesignParams d;
  d.cs_m = 75;
  d.cs_c_hold_f = 0.5e-12;
  d.cs_c_int_f = 2e-12;

  d.cs_style = CsStyle::PassiveCharge;
  const double passive = power::capacitor_area(tech, d).cs_encoder;
  d.cs_style = CsStyle::ActiveIntegrator;
  const double active = power::capacitor_area(tech, d).cs_encoder;
  d.cs_style = CsStyle::DigitalMac;
  const double digital = power::capacitor_area(tech, d).cs_encoder;

  EXPECT_NEAR(passive, (75.0 * 0.5e-12 + 2.0 * 0.125e-12) / 1e-15, 1.0);
  EXPECT_NEAR(active, (75.0 * 2e-12 + 2.0 * 0.125e-12) / 1e-15, 1.0);
  EXPECT_DOUBLE_EQ(digital, 0.0);
  EXPECT_GT(active, passive);  // C_int > C_hold here
}

// --- Reconstruction properties ------------------------------------------------

namespace {

linalg::Vector bandlimited_frame(std::size_t n, std::uint64_t seed,
                                 std::size_t richness = 24) {
  Rng rng(seed);
  linalg::Vector coeffs(n, 0.0);
  for (std::size_t k = 1; k < richness && k < n; ++k) {
    coeffs[k] = rng.gaussian() / (1.0 + 0.2 * static_cast<double>(k));
  }
  return cs::dct_inverse(coeffs);
}

double recon_snr(std::size_t m, std::uint64_t seed, double noise_sigma,
                 std::size_t richness = 24) {
  const std::size_t n = 384;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, seed);
  const auto x = bandlimited_frame(n, seed + 1, richness);
  auto y = phi.apply(x);
  Rng rng(seed + 2);
  for (auto& v : y) v += rng.gaussian(0.0, noise_sigma);
  cs::ReconstructorConfig cfg;
  cfg.compensate_decay = false;
  cfg.residual_tol = 0.01;
  const cs::Reconstructor rec(phi, {1.0, 0.0}, cfg);
  return dsp::snr_vs_reference_db(x, rec.reconstruct_frame(y));
}

}  // namespace

class MeasurementSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeasurementSweep, MoreMeasurementsNeverHurtMuch) {
  // A rich frame (more active coefficients than the smallest M can model):
  // SNR should broadly improve with M.
  const auto seed = GetParam();
  const double snr75 = recon_snr(75, seed, 0.0, 90);
  const double snr150 = recon_snr(150, seed, 0.0, 90);
  const double snr192 = recon_snr(192, seed, 0.0, 90);
  EXPECT_GT(snr150, snr75 - 1.0);
  EXPECT_GT(snr192, snr150 - 1.0);
  EXPECT_GT(snr192, snr75 + 3.0);  // clear net gain over the full range
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasurementSweep, ::testing::Values(11, 22, 33));

TEST(ReconNoise, SnrDegradesWithMeasurementNoise) {
  double prev = 1e9;
  for (double sigma : {0.0, 0.01, 0.05, 0.2}) {
    const double snr = recon_snr(128, 7, sigma);
    EXPECT_LT(snr, prev + 1.0) << sigma;
    prev = snr;
  }
}

TEST(DecaySweep, HarsherDecayHurtsReconstruction) {
  // Same matrix and frame; sweep the capacitor ratio (a, b) from gentle to
  // harsh decay and reconstruct with full compensation: conditioning alone
  // should degrade the result.
  const std::size_t n = 384, m = 96;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 5);
  const auto x = bandlimited_frame(n, 6);
  double prev = 1e9;
  for (double ratio : {16.0, 8.0, 4.0, 1.0}) {  // C_hold / C_sample
    const auto gains = cs::charge_sharing_gains(1.0, ratio);
    const auto eff = cs::effective_matrix(phi, gains.a, gains.b);
    const auto y = linalg::matvec(eff, x);
    cs::ReconstructorConfig cfg;
    cfg.residual_tol = 1e-4;
    const cs::Reconstructor rec(phi, gains, cfg);
    const double snr = dsp::snr_vs_reference_db(x, rec.reconstruct_frame(y));
    EXPECT_LT(snr, prev + 3.0) << "ratio " << ratio;
    prev = snr;
  }
}

// --- Feature extraction invariances -------------------------------------------

TEST(FeatureInvariance, BandPowersScaleInvariant) {
  const classify::FeatureExtractor fx;
  Rng rng(3);
  std::vector<double> x(2048);
  for (auto& v : x) v = rng.gaussian(0.0, 1e-5);
  const auto f1 = fx.epoch_features(x, 512.0);
  for (auto& v : x) v *= 250.0;
  const auto f2 = fx.epoch_features(x, 512.0);
  // Relative band powers, Hjorth, entropy, crest, ZCR are scale-invariant.
  for (std::size_t i : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 11u, 12u}) {
    EXPECT_NEAR(f1[i], f2[i], 1e-9) << "feature " << i;
  }
  // log-rms shifts by log10(250).
  EXPECT_NEAR(f2[0] - f1[0], std::log10(250.0), 1e-9);
}

TEST(FeatureInvariance, DcOffsetIgnored) {
  const classify::FeatureExtractor fx;
  Rng rng(4);
  std::vector<double> x(2048);
  for (auto& v : x) v = rng.gaussian(0.0, 1e-5);
  const auto f1 = fx.epoch_features(x, 512.0);
  for (auto& v : x) v += 0.37;
  const auto f2 = fx.epoch_features(x, 512.0);
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_NEAR(f1[i], f2[i], 1e-6) << "feature " << i;
  }
}

// --- Transmitter / rates consistency ------------------------------------------

TEST(RateConsistency, CompressionNeverIncreasesAnyRate) {
  for (int m : {48, 96, 192}) {
    DesignParams cs;
    cs.cs_m = m;
    const DesignParams base;
    EXPECT_LE(cs.tx_sample_rate_hz(), base.tx_sample_rate_hz());
    EXPECT_LE(cs.adc_rate_hz(), base.adc_rate_hz());
    EXPECT_LE(cs.bit_rate(), base.bit_rate());
  }
}

TEST(RateConsistency, DigitalStyleBitRateStillBelowBaseline) {
  // The wider MAC words must not erase the compression gain at the paper's
  // operating points.
  for (int m : {75, 96, 150, 192}) {
    DesignParams d;
    d.cs_m = m;
    d.cs_style = CsStyle::DigitalMac;
    EXPECT_LT(d.bit_rate(), DesignParams{}.bit_rate()) << "M=" << m;
  }
}
