// The block-diagram engine: parameters, waveforms, graph wiring, scheduling,
// probes, reports and error handling.

#include <gtest/gtest.h>

#include "sim/block.hpp"
#include "sim/model.hpp"
#include "sim/params.hpp"
#include "sim/report.hpp"
#include "sim/waveform.hpp"
#include "util/error.hpp"

using namespace efficsense;
using sim::Waveform;

namespace {

/// Multiplies by a constant; reports fixed power/area for report tests.
class TestGain final : public sim::Block {
 public:
  TestGain(std::string name, double g, double watts = 0.0, double caps = 0.0)
      : Block(std::move(name), 1, 1), g_(g), watts_(watts), caps_(caps) {}
  std::vector<Waveform> process(const std::vector<Waveform>& in) override {
    Waveform out = in.at(0);
    for (double& v : out.samples) v *= g_;
    ++calls_;
    return {out};
  }
  void reset() override { calls_ = 0; }
  double power_watts() const override { return watts_; }
  double area_unit_caps() const override { return caps_; }
  int calls() const { return calls_; }

 private:
  double g_;
  double watts_, caps_;
  int calls_ = 0;
};

class TestSource final : public sim::Block {
 public:
  TestSource(std::string name, Waveform w)
      : Block(std::move(name), 0, 1), w_(std::move(w)) {}
  std::vector<Waveform> process(const std::vector<Waveform>&) override {
    return {w_};
  }

 private:
  Waveform w_;
};

/// Two outputs: the input and its negation.
class TestSplit final : public sim::Block {
 public:
  explicit TestSplit(std::string name) : Block(std::move(name), 1, 2) {}
  std::vector<Waveform> process(const std::vector<Waveform>& in) override {
    Waveform neg = in.at(0);
    for (double& v : neg.samples) v = -v;
    return {in.at(0), neg};
  }
};

/// Sums two inputs.
class TestSum final : public sim::Block {
 public:
  explicit TestSum(std::string name) : Block(std::move(name), 2, 1) {}
  std::vector<Waveform> process(const std::vector<Waveform>& in) override {
    Waveform out = in.at(0);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += in.at(1)[i];
    return {out};
  }
};

Waveform ramp(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return Waveform(100.0, std::move(v));
}

}  // namespace

TEST(Params, TypedAccess) {
  sim::ParameterSet p;
  p.set("gain", 2.5);
  p.set("bits", 8);
  p.set("enabled", true);
  p.set("mode", "fast");
  EXPECT_DOUBLE_EQ(p.get_double("gain"), 2.5);
  EXPECT_EQ(p.get_int("bits"), 8);
  EXPECT_TRUE(p.get_bool("enabled"));
  EXPECT_EQ(p.get_string("mode"), "fast");
  EXPECT_DOUBLE_EQ(p.get_double("bits"), 8.0);  // int promotes to double
}

TEST(Params, MissingAndWrongTypeThrow) {
  sim::ParameterSet p;
  p.set("mode", "fast");
  EXPECT_THROW(p.get_double("nope"), Error);
  EXPECT_THROW(p.get_double("mode"), Error);
  EXPECT_THROW(p.get_int("mode"), Error);
  EXPECT_THROW(p.get_bool("mode"), Error);
}

TEST(Params, Fallbacks) {
  sim::ParameterSet p;
  EXPECT_DOUBLE_EQ(p.get_double("x", 3.0), 3.0);
  EXPECT_EQ(p.get_int("x", 7), 7);
  EXPECT_TRUE(p.get_bool("x", true));
  EXPECT_EQ(p.get_string("x", "def"), "def");
}

TEST(Params, NamesAndToString) {
  sim::ParameterSet p;
  p.set("b", 1.0);
  p.set("a", 2);
  const auto names = p.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // sorted (map order)
  EXPECT_NE(p.to_string().find("a=2"), std::string::npos);
}

TEST(Waveform, DurationAndTimeAxis) {
  const auto w = ramp(200);
  EXPECT_DOUBLE_EQ(w.duration_s(), 2.0);
  const auto t = sim::time_axis(w);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[100], 1.0);
  EXPECT_THROW(Waveform(0.0, {1.0}), Error);
}

TEST(Model, LinearChainComputes) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(10)));
  const auto g1 = m.add(std::make_unique<TestGain>("g1", 2.0));
  const auto g2 = m.add(std::make_unique<TestGain>("g2", 3.0));
  m.chain({src, g1, g2});
  const auto out = m.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0][4], 24.0);  // 4 * 2 * 3
}

TEST(Model, FanOutAndMultiInput) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(8)));
  const auto split = m.add(std::make_unique<TestSplit>("split"));
  const auto sum = m.add(std::make_unique<TestSum>("sum"));
  m.connect(src, 0, split, 0);
  m.connect(split, 0, sum, 0);
  m.connect(split, 1, sum, 1);
  const auto out = m.run();
  ASSERT_EQ(out.size(), 1u);
  for (double v : out[0].samples) EXPECT_DOUBLE_EQ(v, 0.0);  // x + (-x)
}

TEST(Model, MultipleUnconnectedOutputsAreModelOutputs) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(4)));
  const auto split = m.add(std::make_unique<TestSplit>("split"));
  m.connect(src, 0, split, 0);
  const auto out = m.run();
  EXPECT_EQ(out.size(), 2u);  // both split outputs are free
}

TEST(Model, ProbeObservesInnerSignals) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(5)));
  const auto g1 = m.add(std::make_unique<TestGain>("g1", 2.0));
  const auto g2 = m.add(std::make_unique<TestGain>("g2", 5.0));
  m.chain({src, g1, g2});
  m.run();
  EXPECT_DOUBLE_EQ(m.probe("g1")[3], 6.0);
  EXPECT_DOUBLE_EQ(m.probe("src")[3], 3.0);
  EXPECT_THROW(m.probe("nope"), Error);
}

TEST(Model, ProbeBeforeRunThrows) {
  sim::Model m;
  m.add(std::make_unique<TestSource>("src", ramp(5)));
  EXPECT_THROW(m.probe("src"), Error);
}

TEST(Model, UndrivenInputThrows) {
  sim::Model m;
  m.add(std::make_unique<TestGain>("lonely", 1.0));
  EXPECT_THROW(m.run(), Error);
}

TEST(Model, DoubleDrivingInputThrows) {
  sim::Model m;
  const auto s1 = m.add(std::make_unique<TestSource>("s1", ramp(3)));
  const auto s2 = m.add(std::make_unique<TestSource>("s2", ramp(3)));
  const auto g = m.add(std::make_unique<TestGain>("g", 1.0));
  m.connect(s1, 0, g, 0);
  EXPECT_THROW(m.connect(s2, 0, g, 0), Error);
}

TEST(Model, DuplicateNamesRejected) {
  sim::Model m;
  m.add(std::make_unique<TestGain>("same", 1.0));
  EXPECT_THROW(m.add(std::make_unique<TestGain>("same", 2.0)), Error);
}

TEST(Model, BadPortsRejected) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(3)));
  const auto g = m.add(std::make_unique<TestGain>("g", 1.0));
  EXPECT_THROW(m.connect(src, 1, g, 0), Error);
  EXPECT_THROW(m.connect(src, 0, g, 5), Error);
}

TEST(Model, TopologicalOrderIndependentOfInsertion) {
  // Insert downstream block first; scheduling must still work.
  sim::Model m;
  const auto g = m.add(std::make_unique<TestGain>("g", 10.0));
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(3)));
  m.connect(src, 0, g, 0);
  const auto out = m.run();
  EXPECT_DOUBLE_EQ(out[0][2], 20.0);
}

TEST(Model, LookupByName) {
  sim::Model m;
  m.add(std::make_unique<TestGain>("alpha", 1.0));
  EXPECT_TRUE(m.has_block("alpha"));
  EXPECT_FALSE(m.has_block("beta"));
  EXPECT_EQ(m.block("alpha").name(), "alpha");
  EXPECT_THROW(m.id_of("beta"), Error);
}

TEST(Model, ResetPropagatesToBlocks) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(3)));
  auto gain = std::make_unique<TestGain>("g", 1.0);
  TestGain* raw = gain.get();
  const auto g = m.add(std::move(gain));
  m.connect(src, 0, g, 0);
  m.run();
  m.run();
  EXPECT_EQ(raw->calls(), 2);
  m.reset();
  EXPECT_EQ(raw->calls(), 0);
}

TEST(Model, EmplaceReturnsTypedReference) {
  sim::Model m;
  auto& src = m.emplace<TestSource>("src", ramp(3));
  auto& g = m.emplace<TestGain>("g", 4.0);
  m.connect(m.id_of(src.name()), 0, m.id_of(g.name()), 0);
  const auto out = m.run();
  EXPECT_DOUBLE_EQ(out[0][1], 4.0);
}

TEST(Model, PowerAndAreaReports) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(3)));
  const auto a = m.add(std::make_unique<TestGain>("a", 1.0, 2e-6, 100.0));
  const auto b = m.add(std::make_unique<TestGain>("b", 1.0, 3e-6, 50.0));
  m.chain({src, a, b});
  const auto power = m.power_report();
  EXPECT_DOUBLE_EQ(power.total_watts(), 5e-6);
  EXPECT_DOUBLE_EQ(power.watts_of("a"), 2e-6);
  EXPECT_DOUBLE_EQ(power.watts_of("missing"), 0.0);
  const auto area = m.area_report();
  EXPECT_DOUBLE_EQ(area.total_unit_caps(), 150.0);
  EXPECT_DOUBLE_EQ(area.caps_of("b"), 50.0);
}

TEST(Report, MergeAndToString) {
  sim::PowerReport r1, r2;
  r1.add("lna", 1e-6);
  r2.add("lna", 2e-6);
  r2.add("tx", 3e-6);
  r1.merge(r2);
  EXPECT_DOUBLE_EQ(r1.watts_of("lna"), 3e-6);
  EXPECT_DOUBLE_EQ(r1.total_watts(), 6e-6);
  EXPECT_NE(r1.to_string().find("lna"), std::string::npos);
}

TEST(Report, EmptyReports) {
  const sim::PowerReport empty;
  EXPECT_DOUBLE_EQ(empty.total_watts(), 0.0);
  EXPECT_DOUBLE_EQ(empty.watts_of("anything"), 0.0);
  EXPECT_TRUE(empty.entries().empty());
  // to_string must not divide by the zero total.
  EXPECT_NE(empty.to_string().find("total"), std::string::npos);

  const sim::AreaReport area;
  EXPECT_DOUBLE_EQ(area.total_unit_caps(), 0.0);
  EXPECT_DOUBLE_EQ(area.caps_of("adc"), 0.0);

  sim::PowerReport target;
  target.add("lna", 1e-6);
  target.merge(empty);  // merging an empty report is a no-op
  EXPECT_DOUBLE_EQ(target.total_watts(), 1e-6);
}

TEST(Report, DuplicateBlockNamesAccumulate) {
  sim::PowerReport r;
  r.add("adc", 1e-6);
  r.add("adc", 2e-6);
  r.add("adc", 0.5e-6);
  // Same-named adds collapse into one entry — merge() relies on this.
  ASSERT_EQ(r.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(r.watts_of("adc"), 3.5e-6);
  EXPECT_DOUBLE_EQ(r.total_watts(), 3.5e-6);

  sim::AreaReport a;
  a.add("cs_enc", 100.0);
  a.add("cs_enc", 50.0);
  a.add("adc", 25.0);
  ASSERT_EQ(a.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(a.caps_of("cs_enc"), 150.0);
  EXPECT_DOUBLE_EQ(a.total_unit_caps(), 175.0);
}

TEST(Report, MergeIsCommutativeOnTotals) {
  sim::PowerReport a, b;
  a.add("lna", 1e-6);
  a.add("adc", 2e-6);
  b.add("adc", 3e-6);
  b.add("tx", 4e-6);
  sim::PowerReport ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_DOUBLE_EQ(ab.total_watts(), ba.total_watts());
  EXPECT_DOUBLE_EQ(ab.watts_of("adc"), 5e-6);
  EXPECT_DOUBLE_EQ(ba.watts_of("adc"), 5e-6);
  // Percentages in the summary come from the merged total.
  EXPECT_NE(ab.to_string().find("%"), std::string::npos);
}

TEST(Model, RunStatsAccumulateAcrossRuns) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(8)));
  const auto g = m.add(std::make_unique<TestGain>("g", 2.0));
  m.connect(src, 0, g, 0);
  m.run();
  m.run();
  const auto& stats = m.run_stats();
  EXPECT_EQ(stats.runs, 2u);
  ASSERT_EQ(stats.blocks.size(), 2u);
  EXPECT_GE(stats.total_seconds, 0.0);
  for (const auto& b : stats.blocks) {
    EXPECT_EQ(b.runs, 2u);
    EXPECT_EQ(b.samples_out, 16u);  // 8 samples per run, 2 runs
    EXPECT_GE(b.seconds, 0.0);
  }
  const auto text = stats.to_string();
  EXPECT_NE(text.find("src"), std::string::npos);
  EXPECT_NE(text.find("g"), std::string::npos);

  m.reset_run_stats();
  EXPECT_EQ(m.run_stats().runs, 0u);
  EXPECT_TRUE(m.run_stats().blocks.empty());
}

TEST(FunctionBlock, WrapsFreeFunction) {
  sim::Model m;
  m.add(std::make_unique<TestSource>("src", ramp(4)));
  m.add(std::make_unique<sim::FunctionBlock>("sq", [](const Waveform& w) {
    Waveform out = w;
    for (double& v : out.samples) v *= v;
    return out;
  }));
  m.connect("src", "sq");
  const auto out = m.run();
  EXPECT_DOUBLE_EQ(out[0][3], 9.0);
}

#include "blocks/sources.hpp"
#include "sim/composite.hpp"

TEST(Composite, WrapsInnerChain) {
  auto inner = std::make_unique<sim::Model>();
  const auto src = inner->add(std::make_unique<efficsense::blocks::WaveformSource>("in"));
  const auto g = inner->add(std::make_unique<TestGain>("g", 3.0, 2e-6, 10.0));
  inner->connect(src, 0, g, 0);

  sim::Model outer;
  const auto osrc = outer.add(std::make_unique<TestSource>("src", ramp(5)));
  const auto comp = outer.add(
      std::make_unique<sim::CompositeBlock>("frontend", std::move(inner), "in"));
  const auto post = outer.add(std::make_unique<TestGain>("post", 2.0));
  outer.chain({osrc, comp, post});

  const auto out = outer.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0][4], 24.0);  // 4 * 3 (inner) * 2 (outer)
  // Power and area aggregate through the hierarchy.
  EXPECT_DOUBLE_EQ(outer.power_report().watts_of("frontend"), 2e-6);
  EXPECT_DOUBLE_EQ(outer.area_report().caps_of("frontend"), 10.0);
}

TEST(Composite, RunsRepeatedlyWithFreshInputs) {
  auto inner = std::make_unique<sim::Model>();
  const auto src = inner->add(std::make_unique<efficsense::blocks::WaveformSource>("in"));
  const auto g = inner->add(std::make_unique<TestGain>("g", 10.0));
  inner->connect(src, 0, g, 0);
  sim::CompositeBlock comp("c", std::move(inner), "in");

  const auto y1 = comp.process({ramp(3)})[0];
  EXPECT_DOUBLE_EQ(y1[2], 20.0);
  sim::Waveform other(100.0, {5.0});
  const auto y2 = comp.process({other})[0];
  EXPECT_DOUBLE_EQ(y2[0], 50.0);
}

TEST(Composite, ValidatesEntryBlock) {
  {
    auto inner = std::make_unique<sim::Model>();
    inner->add(std::make_unique<TestGain>("notasource", 1.0));
    EXPECT_THROW(
        sim::CompositeBlock("c", std::move(inner), "notasource"), Error);
  }
  {
    auto inner = std::make_unique<sim::Model>();
    inner->add(std::make_unique<TestSource>("src", ramp(3)));
    // TestSource is 0-in/1-out but does not implement WaveformSettable.
    sim::CompositeBlock comp("c", std::move(inner), "src");
    EXPECT_THROW(comp.process({ramp(3)}), Error);
  }
}

TEST(ModelDot, RendersNodesAndEdges) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(4)));
  const auto g = m.add(std::make_unique<TestGain>("amp", 2.0, 1e-6));
  m.connect(src, 0, g, 0);
  const auto dot = m.to_dot();
  EXPECT_NE(dot.find("digraph model"), std::string::npos);
  EXPECT_NE(dot.find("src"), std::string::npos);
  EXPECT_NE(dot.find("amp"), std::string::npos);
  EXPECT_NE(dot.find("1 uW"), std::string::npos);  // power annotation
  EXPECT_NE(dot.find("b0 -> b1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// LaneBank + batched execution (the SoA K-lane Monte-Carlo engine).

#include "sim/arena.hpp"
#include "sim/lane_bank.hpp"

namespace {

/// Adds k to every sample of lane k — deliberately breaks uniformity so the
/// blocks downstream exercise the default per-lane fallback.
class LaneOffset final : public sim::Block {
 public:
  explicit LaneOffset(std::string name) : Block(std::move(name), 1, 1) {}
  std::vector<Waveform> process(const std::vector<Waveform>& in) override {
    return {in.at(0)};
  }
  void process_batch(std::size_t lanes,
                     const std::vector<const sim::LaneBank*>& inputs,
                     std::vector<sim::LaneBank>& outputs,
                     sim::WaveformArena& arena) override {
    const sim::LaneBank& x = *inputs.at(0);
    auto out = sim::LaneBank::acquire(arena, x.fs(), lanes, x.samples(),
                                      /*uniform=*/false);
    for (std::size_t k = 0; k < lanes; ++k) {
      const double* xr = x.lane(k);
      double* o = out.lane(k);
      for (std::size_t i = 0; i < x.samples(); ++i) {
        o[i] = xr[i] + static_cast<double>(k);
      }
    }
    outputs.push_back(std::move(out));
  }
};

}  // namespace

TEST(LaneBank, LayoutUniformityAndAdopt) {
  const auto b = sim::LaneBank::adopt(100.0, 2, 3, /*uniform=*/false,
                                      {0, 1, 2, 10, 11, 12});
  EXPECT_EQ(b.lanes(), 2u);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_FALSE(b.uniform());
  EXPECT_DOUBLE_EQ(b.lane(1)[0], 10.0);
  const auto w = b.lane_waveform(1);
  EXPECT_DOUBLE_EQ(w.fs, 100.0);
  EXPECT_EQ(w.samples, (std::vector<double>{10, 11, 12}));

  const auto u = sim::LaneBank::broadcast(4, ramp(3));
  EXPECT_TRUE(u.uniform());
  EXPECT_EQ(u.lanes(), 4u);
  EXPECT_EQ(u.rows(), 1u);           // one stored row...
  EXPECT_EQ(u.lane(3), u.lane(0));   // ...aliased by every lane

  EXPECT_THROW(sim::LaneBank::adopt(100.0, 2, 3, false, {1.0}), Error);
}

TEST(Model, RunBatchBroadcastsUniformChains) {
  // A fully deterministic chain stays uniform end to end: the default
  // process_batch computes each block ONCE regardless of the lane count.
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(6)));
  const auto id = m.add(std::make_unique<TestGain>("g", 2.0));
  m.chain({src, id});
  auto* gain = dynamic_cast<TestGain*>(&m.block("g"));
  ASSERT_NE(gain, nullptr);

  const auto out = m.run_batch(8);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0]->uniform());
  EXPECT_EQ(out[0]->lanes(), 8u);
  EXPECT_EQ(gain->calls(), 1);  // not 8
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_DOUBLE_EQ(out[0]->lane(k)[3], 6.0);  // 3 * 2
  }
}

TEST(Model, RunBatchPerLaneFallbackAfterDivergence) {
  // Once a block emits per-lane data, downstream unconverted blocks fall
  // back to one scalar process() per lane and stay correct.
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(4)));
  const auto off = m.add(std::make_unique<LaneOffset>("off"));
  const auto g = m.add(std::make_unique<TestGain>("g", 3.0));
  m.chain({src, off, g});
  auto* gain = dynamic_cast<TestGain*>(&m.block("g"));
  ASSERT_NE(gain, nullptr);

  const auto out = m.run_batch(4);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0]->uniform());
  EXPECT_EQ(gain->calls(), 4);  // one scalar call per lane
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(out[0]->lane(k)[i],
                       (static_cast<double>(i) + static_cast<double>(k)) * 3.0);
    }
  }

  // probe_batch observes inner banks, like probe() does for run().
  const auto& probed = m.probe_batch("off", 0);
  EXPECT_DOUBLE_EQ(probed.lane(2)[1], 3.0);  // 1 + lane 2

  // run_batch(1) degenerates to the scalar topology result.
  const auto single = m.run_batch(1);
  EXPECT_DOUBLE_EQ(single[0]->lane(0)[2], 6.0);
}

TEST(Model, RunBatchMatchesScalarRunForLaneInvariantChains) {
  sim::Model m;
  const auto src = m.add(std::make_unique<TestSource>("src", ramp(16)));
  const auto split = m.add(std::make_unique<TestSplit>("split"));
  const auto sum = m.add(std::make_unique<TestSum>("sum"));
  m.connect(src, 0, split, 0);
  m.connect(split, 0, sum, 0);
  m.connect(split, 1, sum, 1);

  const auto scalar = m.run();
  const auto batch = m.run_batch(3);
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_EQ(batch[0]->samples(), scalar[0].size());
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < scalar[0].size(); ++i) {
      EXPECT_DOUBLE_EQ(batch[0]->lane(k)[i], scalar[0][i]);
    }
  }
}
