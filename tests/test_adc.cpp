// SAR ADC behavioural model: quantization accuracy, saturation, mismatch
// (INL) and comparator-noise effects, resolution scaling.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "blocks/sar_adc.hpp"
#include "blocks/sources.hpp"
#include "dsp/metrics.hpp"
#include "power/models.hpp"
#include "util/error.hpp"

using namespace efficsense;
using sim::Waveform;

namespace {

power::TechnologyParams quiet_tech() {
  power::TechnologyParams t;
  t.k_match_1f = 0.0;  // no mismatch
  return t;
}

power::DesignParams quiet_design(int bits = 8) {
  power::DesignParams d;
  d.adc_bits = bits;
  d.comparator_noise_vrms = 0.0;
  return d;
}

Waveform dc(double v, std::size_t n = 1) {
  return Waveform(537.6, std::vector<double>(n, v));
}

}  // namespace

TEST(SarAdc, IdealQuantizationErrorBounded) {
  blocks::SarAdcBlock adc("adc", quiet_tech(), quiet_design(), 1, 2);
  const double lsb = adc.lsb();
  for (double v = -0.99; v < 0.99; v += 0.013) {
    const auto out = adc.process({dc(v)})[0];
    EXPECT_NEAR(out[0], v, lsb * 0.5 + 1e-12) << "v=" << v;
  }
}

TEST(SarAdc, SaturatesOutsideFullScale) {
  blocks::SarAdcBlock adc("adc", quiet_tech(), quiet_design(), 1, 2);
  const auto lo = adc.process({dc(-5.0)})[0][0];
  const auto hi = adc.process({dc(5.0)})[0][0];
  EXPECT_NEAR(lo, -1.0, adc.lsb());
  EXPECT_NEAR(hi, 1.0, adc.lsb());
}

TEST(SarAdc, MonotonicWithoutMismatch) {
  blocks::SarAdcBlock adc("adc", quiet_tech(), quiet_design(), 1, 2);
  double prev = -10.0;
  for (double v = -1.0; v <= 1.0; v += 1e-3) {
    const double q = adc.process({dc(v)})[0][0];
    EXPECT_GE(q, prev - 1e-12);
    prev = q;
  }
}

class SarAdcEnob : public ::testing::TestWithParam<int> {};

TEST_P(SarAdcEnob, CleanSineReachesResolution) {
  const int bits = GetParam();
  blocks::SarAdcBlock adc("adc", quiet_tech(), quiet_design(bits), 1, 2);
  blocks::SineSource tone("t", 537.6, 60.0, 13.7, 0.999);
  const auto in = tone.process({}).front();
  const auto out = adc.process({in})[0];
  const auto a = dsp::analyze_tone(out.samples, out.fs);
  EXPECT_NEAR(a.enob, bits, 0.4);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, SarAdcEnob, ::testing::Values(6, 7, 8, 10));

TEST(SarAdc, ComparatorNoiseDegradesEnob) {
  auto d = quiet_design(8);
  d.comparator_noise_vrms = 10e-3;  // ~1.3 LSB of decision noise
  blocks::SarAdcBlock adc("adc", quiet_tech(), d, 1, 2);
  blocks::SineSource tone("t", 537.6, 60.0, 13.7, 0.999);
  const auto in = tone.process({}).front();
  const auto out = adc.process({in})[0];
  const auto a = dsp::analyze_tone(out.samples, out.fs);
  EXPECT_LT(a.enob, 7.0);
  EXPECT_GT(a.enob, 4.0);
}

TEST(SarAdc, MismatchCreatesStaticNonlinearity) {
  power::TechnologyParams rough;
  rough.k_match_1f = 0.05;  // 5 % unit-cap sigma: severe mismatch
  auto d = quiet_design(8);
  blocks::SarAdcBlock adc_rough("a", rough, d, 7, 2);
  blocks::SarAdcBlock adc_clean("b", quiet_tech(), d, 7, 2);
  // Conversion is deterministic (no comparator noise); compare transfer
  // curves.
  double max_dev = 0.0;
  std::size_t moved = 0, total = 0;
  for (double v = -0.9; v <= 0.9; v += 0.004) {
    const double q1 = adc_rough.process({dc(v)})[0][0];
    const double q2 = adc_clean.process({dc(v)})[0][0];
    max_dev = std::max(max_dev, std::fabs(q1 - q2));
    if (q1 != q2) ++moved;
    ++total;
  }
  EXPECT_GE(max_dev, adc_clean.lsb());     // code boundaries shifted
  EXPECT_GT(moved, total / 20);            // ... for a sizeable input range
}

TEST(SarAdc, MismatchIsFrozenPerInstance) {
  power::TechnologyParams rough;
  rough.k_match_1f = 0.02;
  auto d = quiet_design(8);
  blocks::SarAdcBlock a("a", rough, d, 77, 2);
  blocks::SarAdcBlock b("b", rough, d, 77, 2);
  blocks::SarAdcBlock c("c", rough, d, 78, 2);
  EXPECT_EQ(a.actual_weights(), b.actual_weights());  // same fabrication seed
  EXPECT_NE(a.actual_weights(), c.actual_weights());
}

TEST(SarAdc, WeightsSumBelowOne) {
  blocks::SarAdcBlock adc("adc", power::TechnologyParams{}, quiet_design(8), 3, 4);
  double sum = 0.0;
  for (double w : adc.actual_weights()) sum += w;
  // Total of bit weights: (2^N - 1) / (2^N) of full scale (dummy cap).
  EXPECT_NEAR(sum, 255.0 / 256.0, 0.02);
}

TEST(SarAdc, PowerIsSumOfTableIIComponents) {
  power::TechnologyParams tech;
  power::DesignParams d;
  blocks::SarAdcBlock adc("adc", tech, d, 1, 2);
  const double expected = power::comparator_power(tech, d) +
                          power::sar_logic_power(tech, d) +
                          power::dac_power(tech, d);
  EXPECT_DOUBLE_EQ(adc.power_watts(), expected);

  blocks::SarAdcBlock adc_sh("adc2", tech, d, 1, 2,
                             /*include_sampling_network=*/true);
  EXPECT_DOUBLE_EQ(adc_sh.power_watts(),
                   expected + power::sample_hold_power(tech, d));
}

TEST(SarAdc, AreaIsDacArray) {
  power::TechnologyParams tech;
  power::DesignParams d;
  d.adc_bits = 8;
  d.dac_c_unit_f = 4e-15;
  blocks::SarAdcBlock adc("adc", tech, d, 1, 2);
  EXPECT_DOUBLE_EQ(adc.area_unit_caps(), 256.0 * 4.0);
}

TEST(SarAdc, NoiseStreamAdvancesAndResets) {
  auto d = quiet_design(8);
  d.comparator_noise_vrms = 5e-3;
  blocks::SarAdcBlock adc("adc", quiet_tech(), d, 1, 99);
  const auto in = dc(0.31, 200);
  const auto r1 = adc.process({in})[0];
  const auto r2 = adc.process({in})[0];
  EXPECT_NE(r1.samples, r2.samples);
  adc.reset();
  const auto r3 = adc.process({in})[0];
  EXPECT_EQ(r1.samples, r3.samples);
}
