// The multi-worker sweep fabric: spool file round-trips, group-commit
// journaling, the lease lifecycle (grant, steal-split, expiry →
// reassignment), duplicate-commit handling at merge time, merge output
// determinism under journal-order permutation, spool discovery and the
// fleet view of build_report. Fleets here run in-process — coordinator and
// workers on threads sharing a TempDir spool — which exercises the same
// file protocol the forked run_sweep fleet uses.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/design_space.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "run/coordinator.hpp"
#include "run/durable.hpp"
#include "run/fleet.hpp"
#include "run/journal.hpp"
#include "run/status_report.hpp"
#include "run/worker.hpp"
#include "util/atomic_io.hpp"
#include "util/error.hpp"

using namespace efficsense;
using namespace efficsense::core;
using namespace efficsense::run;

namespace fs = std::filesystem;

namespace {

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("efficsense_fleet_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

/// A 24-point space, big enough that two workers genuinely share it.
DesignSpace fleet_space() {
  DesignSpace space;
  space.add_axis("lna_noise_vrms", {1e-6, 2e-6, 3e-6, 4e-6})
      .add_axis("adc_bits", {4, 5, 6, 7, 8, 9});
  return space;
}

/// Deterministic, cheap stand-in for Evaluator::evaluate.
EvalMetrics fake_metrics(const power::DesignParams& d) {
  EvalMetrics m;
  m.snr_db = 20.0 + 1e6 * d.lna_noise_vrms + d.adc_bits;
  m.accuracy = 0.9 + 0.001 * d.adc_bits;
  m.power_w = 1e-6 * d.adc_bits + d.lna_noise_vrms;
  m.area_unit_caps = 100.0 * d.adc_bits;
  m.segments_evaluated = 4;
  m.power_breakdown.add("lna", 0.5 * m.power_w);
  m.power_breakdown.add("adc", 0.5 * m.power_w);
  m.area_breakdown.add("adc", m.area_unit_caps);
  return m;
}

/// Serial oracle: the unsharded DurableSweeper run every fleet result must
/// reproduce bitwise (as CSV).
std::string serial_csv(const TempDir& tmp, const DesignSpace& space,
                       std::uint64_t digest = 42) {
  RunOptions o;
  o.journal_path = tmp.path("serial_oracle.jsonl");
  o.config_digest = digest;
  DurableSweeper sweeper(fake_metrics, o);
  power::DesignParams base;
  const auto out = sweeper.run(base, space);
  return sweep_to_csv(out.results);
}

CoordinatorOptions coord_options(const std::string& spool, double ttl = 5.0) {
  CoordinatorOptions o;
  o.spool_dir = spool;
  o.config_digest = 42;
  o.lease_ttl_s = ttl;
  o.poll_interval_s = 0.01;
  o.stall_timeout_s = 30.0;  // fail the test instead of hanging forever
  return o;
}

WorkerOptions worker_options(const std::string& spool,
                             const std::string& name) {
  WorkerOptions o;
  o.spool_dir = spool;
  o.name = name;
  o.config_digest = 42;
  o.poll_interval_s = 0.005;
  o.manifest_timeout_s = 10.0;
  return o;
}

std::string read_text(const std::string& path) {
  const auto blob = read_file(path);
  return blob ? *blob : std::string();
}

/// Scoped env var override restoring the previous value on destruction.
struct ScopedEnv {
  std::string key;
  std::string saved;
  bool had = false;
  ScopedEnv(const std::string& k, const char* value) : key(k) {
    if (const char* old = std::getenv(k.c_str())) {
      had = true;
      saved = old;
    }
    if (value) {
      ::setenv(k.c_str(), value, 1);
    } else {
      ::unsetenv(k.c_str());
    }
  }
  ~ScopedEnv() {
    if (had) {
      ::setenv(key.c_str(), saved.c_str(), 1);
    } else {
      ::unsetenv(key.c_str());
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Spool file vocabulary

TEST(FleetFiles, ManifestLeaseHeartbeatRoundTrip) {
  FleetManifest m;
  m.header.config_digest = 0xABCDEF;
  m.header.space_digest = 0x1234;
  m.header.total_points = 24;
  m.lease_ttl_s = 2.5;
  const auto m2 = parse_manifest(manifest_to_line(m));
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->header.config_digest, m.header.config_digest);
  EXPECT_EQ(m2->header.space_digest, m.header.space_digest);
  EXPECT_EQ(m2->header.total_points, 24u);
  EXPECT_DOUBLE_EQ(m2->lease_ttl_s, 2.5);

  Lease l;
  l.id = 7;
  l.worker = "w1";
  l.begin = 6;
  l.end = 12;
  l.version = 3;
  const auto l2 = parse_lease(lease_to_line(l));
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->id, 7u);
  EXPECT_EQ(l2->worker, "w1");
  EXPECT_EQ(l2->begin, 6u);
  EXPECT_EQ(l2->end, 12u);
  EXPECT_EQ(l2->version, 3u);

  WorkerHeartbeat hb;
  hb.worker = "w1";
  hb.updated_unix_s = 1234.5;
  hb.lease_id = 7;
  hb.lease_version = 3;
  hb.next = 9;
  hb.committed = 4;
  hb.idle = false;
  const auto hb2 = parse_heartbeat(heartbeat_to_line(hb));
  ASSERT_TRUE(hb2.has_value());
  EXPECT_EQ(hb2->worker, "w1");
  EXPECT_DOUBLE_EQ(hb2->updated_unix_s, 1234.5);
  EXPECT_EQ(hb2->lease_id, 7u);
  EXPECT_EQ(hb2->lease_version, 3u);
  EXPECT_EQ(hb2->next, 9u);
  EXPECT_EQ(hb2->committed, 4u);
  EXPECT_FALSE(hb2->idle);
}

TEST(FleetFiles, SealedFilesSurviveRoundTripAndRejectCorruption) {
  TempDir tmp;
  const auto path = tmp.path("lease.json");
  Lease l;
  l.id = 1;
  l.worker = "w";
  l.begin = 0;
  l.end = 6;
  write_sealed_file(path, lease_to_line(l));
  const auto back = read_sealed_file(path);
  ASSERT_TRUE(back.has_value());
  const auto parsed = parse_lease(*back);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->end, 6u);

  // Flip a byte: the crc must reject the file ("absent", never garbage).
  auto bytes = read_text(path);
  bytes[bytes.size() / 2] ^= 0x01;
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_FALSE(read_sealed_file(path).has_value());

  EXPECT_FALSE(read_sealed_file(tmp.path("missing.json")).has_value());
}

TEST(FleetFiles, EnvKnobs) {
  {
    ScopedEnv ttl("EFFICSENSE_LEASE_TTL", nullptr);
    EXPECT_DOUBLE_EQ(lease_ttl_s_from_env(), 10.0);
  }
  {
    ScopedEnv ttl("EFFICSENSE_LEASE_TTL", "2.5");
    EXPECT_DOUBLE_EQ(lease_ttl_s_from_env(), 2.5);
  }
  {
    // Floor: a TTL below 0.1 s would expire workers between heartbeats.
    ScopedEnv ttl("EFFICSENSE_LEASE_TTL", "0.001");
    EXPECT_DOUBLE_EQ(lease_ttl_s_from_env(), 0.1);
  }
  {
    ScopedEnv w("EFFICSENSE_WORKERS", nullptr);
    EXPECT_EQ(workers_from_env(), 0u);
  }
  {
    ScopedEnv w("EFFICSENSE_WORKERS", "4");
    EXPECT_EQ(workers_from_env(), 4u);
  }
}

// ---------------------------------------------------------------------------
// Group-commit journaling

TEST(GroupCommit, SyncModeFromEnv) {
  {
    ScopedEnv mode("EFFICSENSE_FSYNC", nullptr);
    EXPECT_EQ(sync_mode_from_env(), SyncMode::Each);
  }
  {
    ScopedEnv mode("EFFICSENSE_FSYNC", "each");
    EXPECT_EQ(sync_mode_from_env(), SyncMode::Each);
  }
  {
    ScopedEnv mode("EFFICSENSE_FSYNC", "group");
    EXPECT_EQ(sync_mode_from_env(), SyncMode::Group);
  }
  {
    ScopedEnv mode("EFFICSENSE_FSYNC", "sometimes");
    EXPECT_THROW(sync_mode_from_env(), Error);
  }
}

TEST(GroupCommit, EachModeSyncsEveryLine) {
  TempDir tmp;
  AppendFile f(tmp.path("each.log"), SyncMode::Each);
  for (int i = 0; i < 5; ++i) f.append_line("line " + std::to_string(i));
  EXPECT_EQ(f.syncs(), 5u);
  EXPECT_EQ(f.coalesced(), 0u);
}

TEST(GroupCommit, GroupModeCoalescesWithinWindow) {
  TempDir tmp;
  const auto path = tmp.path("group.log");
  {
    // A huge window: every append after the first lands inside it.
    AppendFile f(path, SyncMode::Group, /*group_window_s=*/3600.0);
    for (int i = 0; i < 20; ++i) f.append_line("line " + std::to_string(i));
    EXPECT_EQ(f.syncs(), 0u);
    EXPECT_EQ(f.coalesced(), 20u);
    f.flush();
    EXPECT_EQ(f.syncs(), 1u);
    f.flush();  // clean: no extra sync
    EXPECT_EQ(f.syncs(), 1u);
  }
  // Deferred syncs lose no data within the process.
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 20);
}

TEST(GroupCommit, JournalWriterCountsCoalescedSyncs) {
  TempDir tmp;
  const auto before = obs::counter("run/fsync_coalesced").value();
  JournalHeader h;
  h.config_digest = 1;
  h.space_digest = 2;
  h.total_points = 64;
  {
    auto w = JournalWriter::create(tmp.path("g.jsonl"), h, SyncMode::Group);
    JournalRecord r;
    r.payload = "x";
    // Tight appends: with the 5 ms window most of these coalesce.
    for (std::uint64_t i = 0; i < 64; ++i) {
      r.index = i;
      w.append(r);
    }
    w.flush();
  }
  EXPECT_GT(obs::counter("run/fsync_coalesced").value(), before);
  // The journal still reads back complete.
  const auto back = read_journal(tmp.path("g.jsonl"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->records.size(), 64u);
}

// ---------------------------------------------------------------------------
// Fleet runs (coordinator + workers on threads, shared spool)

TEST(Fleet, SingleWorkerMatchesSerial) {
  TempDir tmp;
  const auto space = fleet_space();
  const auto oracle = serial_csv(tmp, space);
  const auto spool = tmp.path("spool");

  power::DesignParams base;
  Coordinator coordinator(base, space, coord_options(spool));
  CoordinatorOutcome outcome;
  std::thread coord([&] { outcome = coordinator.run(); });
  std::thread worker([&] {
    Worker w(fake_metrics, base, space, worker_options(spool, "w0"));
    w.run();
  });
  coord.join();
  worker.join();

  EXPECT_EQ(outcome.merged.results.size(), 24u);
  EXPECT_TRUE(outcome.merged.quarantined.empty());
  EXPECT_EQ(sweep_to_csv(outcome.merged.results), oracle);
  EXPECT_EQ(outcome.stats.workers_seen, 1u);
  EXPECT_GE(outcome.stats.leases_granted, 1u);
  EXPECT_EQ(outcome.stats.leases_expired, 0u);
  ASSERT_EQ(outcome.worker_journals.size(), 1u);

  const auto paths = spool_paths(spool);
  EXPECT_TRUE(fs::exists(paths.done));
  EXPECT_TRUE(fs::exists(paths.merged));
  const auto merged = read_journal(paths.merged);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->records.size(), 24u);
}

TEST(Fleet, IdleWorkerStealsFromBusyLease) {
  TempDir tmp;
  const auto space = fleet_space();
  const auto oracle = serial_csv(tmp, space);
  const auto spool = tmp.path("spool");

  power::DesignParams base;
  Coordinator coordinator(base, space, coord_options(spool));
  CoordinatorOutcome outcome;
  std::thread coord([&] { outcome = coordinator.run(); });
  // wslow drags 50 ms per point; wfast drains the pending queue and must
  // then split wslow's lease to finish.
  std::thread slow([&] {
    Worker w(
        [](const power::DesignParams& d) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          return fake_metrics(d);
        },
        base, space, worker_options(spool, "wslow"));
    w.run();
  });
  std::thread fast([&] {
    Worker w(fake_metrics, base, space, worker_options(spool, "wfast"));
    w.run();
  });
  coord.join();
  slow.join();
  fast.join();

  EXPECT_EQ(outcome.merged.results.size(), 24u);
  EXPECT_EQ(sweep_to_csv(outcome.merged.results), oracle);
  EXPECT_EQ(outcome.stats.workers_seen, 2u);
  EXPECT_GE(outcome.stats.leases_stolen, 1u);
  // merge_journals already proved no conflicting double-commit (it throws
  // on diverging duplicates); check no point was lost either.
  const auto merged = read_journal(spool_paths(spool).merged);
  ASSERT_TRUE(merged.has_value());
  std::vector<bool> seen(24, false);
  for (const auto& rec : merged->records) {
    ASSERT_LT(rec.index, 24u);
    EXPECT_FALSE(seen[rec.index]) << "index " << rec.index << " twice";
    seen[rec.index] = true;
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "index " << i << " lost";
  }
}

namespace {
/// Not derived from std::exception, so the worker's per-point retry cannot
/// catch it: the worker thread dies mid-lease like a crashed process, and
/// its heartbeat beacon stops with it.
struct WorkerKilled {};
}  // namespace

TEST(Fleet, ExpiredLeaseIsReassignedToSurvivor) {
  TempDir tmp;
  const auto space = fleet_space();
  const auto oracle = serial_csv(tmp, space);
  const auto spool = tmp.path("spool");

  power::DesignParams base;
  auto options = coord_options(spool, /*ttl=*/0.5);
  Coordinator coordinator(base, space, options);
  CoordinatorOutcome outcome;
  std::thread coord([&] { outcome = coordinator.run(); });
  std::atomic<int> doomed_evals{0};
  std::thread doomed([&] {
    Worker w(
        [&](const power::DesignParams& d) {
          if (doomed_evals.fetch_add(1) >= 2) throw WorkerKilled{};
          return fake_metrics(d);
        },
        base, space, worker_options(spool, "wdoomed"));
    try {
      w.run();
    } catch (const WorkerKilled&) {
      // Dead. The Worker unwound, so its heartbeat thread is gone too.
    }
  });
  std::thread survivor([&] {
    Worker w(
        [](const power::DesignParams& d) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          return fake_metrics(d);
        },
        base, space, worker_options(spool, "wsurvivor"));
    w.run();
  });
  coord.join();
  doomed.join();
  survivor.join();

  // The sweep cannot complete without the doomed worker's uncommitted range
  // being revoked and re-granted, so these are guarantees, not races.
  EXPECT_GE(outcome.stats.leases_expired, 1u);
  EXPECT_GE(outcome.stats.leases_reassigned, 1u);
  EXPECT_EQ(outcome.merged.results.size(), 24u);
  EXPECT_EQ(sweep_to_csv(outcome.merged.results), oracle);
}

TEST(Fleet, CompletedSpoolResumesWithoutWorkers) {
  TempDir tmp;
  const auto space = fleet_space();
  const auto spool = tmp.path("spool");

  power::DesignParams base;
  {
    Coordinator coordinator(base, space, coord_options(spool));
    std::thread coord([&] { coordinator.run(); });
    Worker w(fake_metrics, base, space, worker_options(spool, "w0"));
    w.run();
    coord.join();
  }

  // Every point is already journaled: a restarted coordinator adopts them
  // all and finishes with zero workers and zero grants (a stall timeout
  // would fire if it were actually waiting on anyone).
  auto options = coord_options(spool);
  options.stall_timeout_s = 5.0;
  Coordinator again(base, space, options);
  const auto outcome = again.run();
  EXPECT_EQ(outcome.merged.results.size(), 24u);
  EXPECT_EQ(outcome.stats.leases_granted, 0u);
  EXPECT_EQ(outcome.stats.workers_seen, 0u);
}

TEST(Fleet, WorkerRefusesForeignManifest) {
  TempDir tmp;
  const auto space = fleet_space();
  const auto spool = tmp.path("spool");
  const auto paths = spool_paths(spool);
  fs::create_directories(paths.workers_dir);
  fs::create_directories(paths.leases_dir);

  // A manifest pinned to a different configuration digest.
  power::DesignParams base;
  RunOptions foreign;
  foreign.config_digest = 7;
  FleetManifest m;
  m.header = make_header(foreign, base, space);
  write_sealed_file(paths.manifest, manifest_to_line(m));

  Worker w(fake_metrics, base, space, worker_options(spool, "w0"));
  EXPECT_THROW(w.run(), Error);
}

TEST(Fleet, WorkerNameMustBeAFileStem) {
  TempDir tmp;
  power::DesignParams base;
  const auto space = fleet_space();
  EXPECT_THROW(
      Worker(fake_metrics, base, space, worker_options(tmp.path("s"), "a/b")),
      Error);
  EXPECT_THROW(
      Worker(fake_metrics, base, space, worker_options(tmp.path("s"), "..")),
      Error);
}

// ---------------------------------------------------------------------------
// Merge semantics for overlapping worker journals

namespace {

/// Write a whole-shard journal holding the given subset of `donor` records.
void write_subset_journal(const std::string& path, const JournalHeader& h,
                          const std::vector<JournalRecord>& donor,
                          const std::vector<std::uint64_t>& indices,
                          std::uint32_t attempts = 1) {
  JournalHeader whole = h;
  whole.shard = Shard{};
  auto w = JournalWriter::create(path, whole);
  for (const auto idx : indices) {
    JournalRecord r = donor[idx];
    r.attempts = attempts;
    w.append(r);
  }
}

}  // namespace

TEST(Merge, IdenticalDuplicatesAreBenignConflictsRefuse) {
  TempDir tmp;
  const auto space = fleet_space();
  // Donor records from a serial run.
  RunOptions o;
  o.journal_path = tmp.path("donor.jsonl");
  o.config_digest = 42;
  power::DesignParams base;
  DurableSweeper(fake_metrics, o).run(base, space);
  const auto donor = read_journal(o.journal_path);
  ASSERT_TRUE(donor.has_value());
  ASSERT_EQ(donor->records.size(), 24u);

  std::vector<std::uint64_t> low, high;
  for (std::uint64_t i = 0; i <= 13; ++i) low.push_back(i);
  for (std::uint64_t i = 12; i < 24; ++i) high.push_back(i);  // overlap 12,13

  // Identical duplicate commits (a steal or expiry re-evaluated points 12
  // and 13 deterministically): merge dedups them.
  write_subset_journal(tmp.path("a.jsonl"), donor->header, donor->records,
                       low);
  write_subset_journal(tmp.path("b.jsonl"), donor->header, donor->records,
                       high);
  const auto merged = merge_journals(
      {tmp.path("a.jsonl"), tmp.path("b.jsonl")}, base);
  EXPECT_EQ(merged.results.size(), 24u);

  // A conflicting duplicate (same index, different payload — impossible
  // under deterministic evaluation, so it means a corrupted or foreign
  // journal): merge must refuse rather than pick a side.
  {
    JournalHeader whole = donor->header;
    whole.shard = Shard{};
    auto w = JournalWriter::create(tmp.path("c.jsonl"), whole);
    for (const auto idx : high) {
      JournalRecord r = donor->records[idx];
      if (idx == 12) r.payload = donor->records[13].payload;
      w.append(r);
    }
  }
  EXPECT_THROW(
      merge_journals({tmp.path("a.jsonl"), tmp.path("c.jsonl")}, base),
      Error);
}

TEST(Merge, OutputBytesIndependentOfJournalOrder) {
  TempDir tmp;
  const auto space = fleet_space();
  RunOptions o;
  o.journal_path = tmp.path("donor.jsonl");
  o.config_digest = 42;
  power::DesignParams base;
  DurableSweeper(fake_metrics, o).run(base, space);
  const auto donor = read_journal(o.journal_path);
  ASSERT_TRUE(donor.has_value());

  // Both journals cover everything; they differ in the attempts field, so
  // which journal "wins" each duplicate is observable in the merged bytes.
  std::vector<std::uint64_t> all(24);
  for (std::uint64_t i = 0; i < 24; ++i) all[i] = i;
  write_subset_journal(tmp.path("a.jsonl"), donor->header, donor->records,
                       all, /*attempts=*/1);
  write_subset_journal(tmp.path("b.jsonl"), donor->header, donor->records,
                       all, /*attempts=*/2);

  merge_journals({tmp.path("a.jsonl"), tmp.path("b.jsonl")}, base,
                 tmp.path("m_ab.jsonl"));
  merge_journals({tmp.path("b.jsonl"), tmp.path("a.jsonl")}, base,
                 tmp.path("m_ba.jsonl"));
  const auto ab = read_text(tmp.path("m_ab.jsonl"));
  ASSERT_FALSE(ab.empty());
  EXPECT_EQ(ab, read_text(tmp.path("m_ba.jsonl")));
  // Winner is the path-sorted first journal (a.jsonl), not the argument
  // order: every merged record carries its attempts value.
  const auto merged = read_journal(tmp.path("m_ba.jsonl"));
  ASSERT_TRUE(merged.has_value());
  for (const auto& rec : merged->records) EXPECT_EQ(rec.attempts, 1u);
}

// ---------------------------------------------------------------------------
// Spool discovery + fleet-mode status report

TEST(SpoolDiscovery, FleetSpoolAndPlainDirectory) {
  TempDir tmp;
  // Fleet spool: workers/*.jsonl + coordinator heartbeat.
  const auto spool = tmp.path("spool");
  const auto paths = spool_paths(spool);
  fs::create_directories(paths.workers_dir);
  std::ofstream(paths.journal_path("wb")) << "";
  std::ofstream(paths.journal_path("wa")) << "";
  std::ofstream(paths.workers_dir + "/not_a_journal.txt") << "";
  std::ofstream(paths.coordinator_status) << "";
  const auto fleet = discover_spool(spool);
  ASSERT_EQ(fleet.journals.size(), 2u);
  EXPECT_EQ(fleet.journals[0], paths.journal_path("wa"));
  EXPECT_EQ(fleet.journals[1], paths.journal_path("wb"));
  EXPECT_EQ(fleet.status_path, paths.coordinator_status);

  // Plain directory of journals: every *.jsonl, sorted, no status.
  const auto plain = tmp.path("plain");
  fs::create_directories(plain);
  std::ofstream(plain + "/y.jsonl") << "";
  std::ofstream(plain + "/x.jsonl") << "";
  const auto dir = discover_spool(plain);
  ASSERT_EQ(dir.journals.size(), 2u);
  EXPECT_EQ(dir.journals[0], plain + "/x.jsonl");
  EXPECT_EQ(dir.journals[1], plain + "/y.jsonl");
  EXPECT_TRUE(dir.status_path.empty());

  // No journals at all: an error, not an empty report.
  const auto empty = tmp.path("empty");
  fs::create_directories(empty);
  EXPECT_THROW(discover_spool(empty), Error);
}

TEST(StatusReport, FleetJournalsAggregateByUnion) {
  TempDir tmp;
  const auto space = fleet_space();
  RunOptions o;
  o.journal_path = tmp.path("donor.jsonl");
  o.config_digest = 42;
  power::DesignParams base;
  DurableSweeper(fake_metrics, o).run(base, space);
  const auto donor = read_journal(o.journal_path);
  ASSERT_TRUE(donor.has_value());

  // Two overlapping whole-shard journals covering the grid between them.
  std::vector<std::uint64_t> low, high;
  for (std::uint64_t i = 0; i <= 13; ++i) low.push_back(i);
  for (std::uint64_t i = 12; i < 24; ++i) high.push_back(i);
  write_subset_journal(tmp.path("wa.jsonl"), donor->header, donor->records,
                       low);
  write_subset_journal(tmp.path("wb.jsonl"), donor->header, donor->records,
                       high);

  const auto report =
      build_report({tmp.path("wa.jsonl"), tmp.path("wb.jsonl")});
  // Union semantics: 26 records but 24 unique points; overlap is not
  // double-counted and the whole-grid frontier is contiguous and complete.
  EXPECT_EQ(report.total_points, 24u);
  EXPECT_EQ(report.owned, 24u);
  EXPECT_EQ(report.committed, 24u);
  EXPECT_EQ(report.frontier, 24u);
  EXPECT_TRUE(report.complete);

  // An incomplete fleet: drop the high journal's tail.
  std::vector<std::uint64_t> partial_high;
  for (std::uint64_t i = 12; i < 20; ++i) partial_high.push_back(i);
  write_subset_journal(tmp.path("wb.jsonl"), donor->header, donor->records,
                       partial_high);
  const auto partial =
      build_report({tmp.path("wa.jsonl"), tmp.path("wb.jsonl")});
  EXPECT_EQ(partial.owned, 24u);
  EXPECT_EQ(partial.committed, 20u);
  EXPECT_EQ(partial.frontier, 20u);  // 0..19 contiguous
  EXPECT_FALSE(partial.complete);
}
