// Circuit-block functional models: sources, math blocks, the LNA of Fig. 3,
// S&H, CS encoder, transmitter and the digital filter block.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "blocks/basic.hpp"
#include "blocks/cs_encoder.hpp"
#include "blocks/digital_filter.hpp"
#include "blocks/lna.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "blocks/transmitter.hpp"
#include "cs/effective.hpp"
#include "dsp/metrics.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

using namespace efficsense;
using sim::Waveform;

namespace {

power::TechnologyParams default_tech() { return {}; }

power::DesignParams default_design() {
  power::DesignParams d;
  return d;
}

Waveform sine_wave(double fs, double f, double amp, double dur) {
  blocks::SineSource s("s", fs, dur, f, amp);
  return s.process({}).front();
}

}  // namespace

TEST(Sources, SineHasRequestedToneAndLength) {
  const auto w = sine_wave(2048.0, 64.0, 0.5, 2.0);
  EXPECT_EQ(w.size(), 4096u);
  EXPECT_DOUBLE_EQ(w.fs, 2048.0);
  const auto a = dsp::analyze_tone(w.samples, w.fs);
  EXPECT_NEAR(a.fundamental_hz, 64.0, 0.6);
  EXPECT_NEAR(dsp::rms(w.samples), 0.5 / std::numbers::sqrt2, 1e-3);
}

TEST(Sources, SineRejectsAboveNyquist) {
  EXPECT_THROW(blocks::SineSource("s", 100.0, 1.0, 60.0, 1.0), Error);
}

TEST(Sources, WaveformSourceEmitsWhatWasSet) {
  blocks::WaveformSource src("src");
  EXPECT_THROW(src.process({}), Error);  // nothing set yet
  src.set_waveform(Waveform(10.0, {1, 2, 3}));
  const auto out = src.process({});
  EXPECT_EQ(out[0].samples, (std::vector<double>{1, 2, 3}));
}

TEST(BasicBlocks, GainClipAdderCubic) {
  const Waveform w(10.0, {-2.0, 0.5, 2.0});
  blocks::GainBlock g("g", 3.0);
  EXPECT_DOUBLE_EQ(g.process({w})[0][1], 1.5);

  blocks::ClipBlock c("c", -1.0, 1.0);
  const auto clipped = c.process({w})[0];
  EXPECT_DOUBLE_EQ(clipped[0], -1.0);
  EXPECT_DOUBLE_EQ(clipped[1], 0.5);
  EXPECT_DOUBLE_EQ(clipped[2], 1.0);
  EXPECT_THROW(blocks::ClipBlock("bad", 1.0, -1.0), Error);

  blocks::AdderBlock add("a");
  const auto sum = add.process({w, w})[0];
  EXPECT_DOUBLE_EQ(sum[2], 4.0);
  EXPECT_THROW(add.process({w, Waveform(99.0, {1.0})}), Error);  // rate mismatch

  blocks::CubicNonlinearityBlock nl("n", 0.1);
  EXPECT_DOUBLE_EQ(nl.process({w})[0][2], 2.0 - 0.1 * 8.0);
}

TEST(BasicBlocks, NoiseAdderStatistics) {
  blocks::NoiseAdderBlock n("n", 0.1, 42);
  const Waveform w(100.0, std::vector<double>(50000, 0.0));
  const auto out = n.process({w})[0];
  EXPECT_NEAR(dsp::rms(out.samples), 0.1, 0.005);
}

TEST(BasicBlocks, NoiseAdderDeterministicAcrossReset) {
  blocks::NoiseAdderBlock n("n", 1.0, 7);
  const Waveform w(100.0, std::vector<double>(100, 0.0));
  const auto a = n.process({w})[0];
  const auto b = n.process({w})[0];
  EXPECT_NE(a.samples, b.samples);  // consecutive runs see fresh noise
  n.reset();
  const auto a2 = n.process({w})[0];
  EXPECT_EQ(a.samples, a2.samples);  // reset rewinds the stream
}

TEST(Lna, AppliesGain) {
  auto tech = default_tech();
  auto design = default_design();
  design.lna_noise_vrms = 0.1e-6;  // negligible noise
  blocks::LnaBlock lna("lna", tech, design, 1);
  const auto in = sine_wave(8192.0, 50.0, 100e-6, 2.0);
  const auto out = lna.process({in})[0];
  const std::vector<double> tail(out.samples.begin() + 4096, out.samples.end());
  // 100 uV * 1000 = 0.1 V amplitude.
  EXPECT_NEAR(dsp::rms(tail) * std::numbers::sqrt2, 0.1, 0.003);
}

TEST(Lna, InBandNoiseMatchesSpec) {
  auto tech = default_tech();
  auto design = default_design();
  design.lna_noise_vrms = 5e-6;
  blocks::LnaBlock lna("lna", tech, design, 2);
  const Waveform silence(8192.0, std::vector<double>(8192 * 8, 0.0));
  const auto out = lna.process({silence})[0];
  // Input-referred noise over BW_LNA should be ~5 uVrms; at the output it is
  // gain * 5 uV (the LPF confines the white noise to ~BW_LNA).
  const double measured = dsp::rms(out.samples) / design.lna_gain;
  EXPECT_NEAR(measured, 5e-6, 1.2e-6);
}

TEST(Lna, ClipsAtHalfFullScale) {
  auto tech = default_tech();
  auto design = default_design();
  design.lna_noise_vrms = 0.1e-6;
  blocks::LnaBlock lna("lna", tech, design, 3);
  const auto in = sine_wave(8192.0, 50.0, 5e-3, 1.0);  // would be 5 V out
  const auto out = lna.process({in})[0];
  double max_abs = 0.0;
  for (double v : out.samples) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_LE(max_abs, design.v_fs / 2.0 + 1e-12);
  EXPECT_NEAR(max_abs, design.v_fs / 2.0, 1e-6);
}

TEST(Lna, BandwidthLimitsHighFrequencies) {
  auto tech = default_tech();
  auto design = default_design();
  design.lna_noise_vrms = 0.1e-6;
  blocks::LnaBlock lna("lna", tech, design, 4);
  // BW_LNA = 768 Hz; an in-band and a far out-of-band tone.
  const auto in_band = lna.process({sine_wave(16384.0, 100.0, 50e-6, 1.0)})[0];
  lna.reset();
  const auto out_band = lna.process({sine_wave(16384.0, 3072.0, 50e-6, 1.0)})[0];
  const std::vector<double> t1(in_band.samples.begin() + 8192, in_band.samples.end());
  const std::vector<double> t2(out_band.samples.begin() + 8192, out_band.samples.end());
  // 2nd-order LP at 768 Hz: 3072 Hz (2 octaves up) is ~24 dB down.
  EXPECT_GT(dsp::rms(t1) / dsp::rms(t2), 10.0);
}

TEST(Lna, DistortionMatchesHd3Spec) {
  auto tech = default_tech();
  auto design = default_design();
  design.lna_noise_vrms = 0.05e-6;
  blocks::LnaBlock lna("lna", tech, design, 5, /*hd3_db=*/-40.0);
  // Full-swing output tone: HD3 should appear near -40 dB.
  const auto in = sine_wave(16384.0, 40.0, 1e-3, 4.0);  // 1 V out = full swing
  const auto out = lna.process({in})[0];
  const std::vector<double> tail(out.samples.begin() + 16384, out.samples.end());
  const auto a = dsp::analyze_tone(tail, 16384.0);
  EXPECT_NEAR(a.thd_db, -40.0, 3.0);
}

TEST(Lna, PowerMatchesTableII) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::LnaBlock lna("lna", tech, design, 6);
  EXPECT_DOUBLE_EQ(lna.power_watts(), power::lna_power(tech, design));
  EXPECT_GT(lna.power_watts(), 0.0);
}

TEST(SampleHold, OutputsAtFsample) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::SampleHoldBlock sh("sh", tech, design, 1);
  const auto in = sine_wave(2048.0, 10.0, 0.5, 2.0);
  const auto out = sh.process({in})[0];
  EXPECT_DOUBLE_EQ(out.fs, design.f_sample_hz());
  EXPECT_EQ(out.size(), static_cast<std::size_t>(2.0 * design.f_sample_hz()));
}

TEST(SampleHold, PreservesInBandTone) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::SampleHoldBlock sh("sh", tech, design, 2);
  const auto in = sine_wave(8192.0, 20.0, 0.5, 4.0);
  const auto out = sh.process({in})[0];
  const auto a = dsp::analyze_tone(out.samples, out.fs);
  EXPECT_NEAR(a.fundamental_hz, 20.0, 0.5);
}

TEST(SampleHold, KtCNoiseLevel) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::SampleHoldBlock sh("sh", tech, design, 3);
  const double expected =
      std::sqrt(units::kT / design.sh_cap_f(tech));
  EXPECT_NEAR(sh.kt_c_noise_vrms(), expected, 1e-9);
  // Measure on a silent input.
  const Waveform silence(2048.0, std::vector<double>(2048 * 30, 0.0));
  const auto out = sh.process({silence})[0];
  EXPECT_NEAR(dsp::rms(out.samples), expected, 0.1 * expected);
}

TEST(SampleHold, AreaIsItsCapacitor) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::SampleHoldBlock sh("sh", tech, design, 4);
  EXPECT_NEAR(sh.area_unit_caps(), design.sh_cap_f(tech) / tech.c_u_min_f, 1e-9);
}

TEST(Transmitter, CountsBits) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::TransmitterBlock tx("tx", tech, design, 1);
  // A mid-tread-aligned value (what a SAR ADC actually emits).
  const double v = (160.0 + 0.5) / 256.0 * 2.0 - 1.0;
  const Waveform w(537.6, std::vector<double>(1000, v));
  const auto out = tx.process({w})[0];
  EXPECT_EQ(out.samples, w.samples);  // lossless by default
  EXPECT_EQ(tx.last_bits_sent(), 1000u * 8u);
}

TEST(Transmitter, BitErrorsCorruptSamples) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::TransmitterBlock tx("tx", tech, design, 2, /*ber=*/0.05);
  const double v = (160.0 + 0.5) / 256.0 * 2.0 - 1.0;
  const Waveform w(537.6, std::vector<double>(2000, v));
  const auto out = tx.process({w})[0];
  std::size_t changed = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (out[i] != w[i]) ++changed;
  }
  // P(sample unchanged) = (1-0.05)^8 ~ 0.66 -> expect ~680 corrupted.
  EXPECT_GT(changed, 400u);
  EXPECT_LT(changed, 1000u);
}

TEST(Transmitter, PowerScalesWithRateAndBits) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::TransmitterBlock tx8("tx8", tech, design, 3);
  auto design6 = design;
  design6.adc_bits = 6;
  blocks::TransmitterBlock tx6("tx6", tech, design6, 3);
  EXPECT_GT(tx8.power_watts(), tx6.power_watts());
  // Paper sanity: 537.6 Hz * 8 bit * 1 nJ = 4.3 uW.
  EXPECT_NEAR(tx8.power_watts(), 4.3e-6, 0.01e-6);
}

TEST(DigitalFilter, FiltersAndReportsPower) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::DigitalFilterBlock f("dsp", tech, design,
                               dsp::rbj_notch(50.0, 8.0, 537.6));
  const auto in = sine_wave(537.6, 50.0, 1.0, 4.0);
  const auto out = f.process({in})[0];
  const std::vector<double> tail(out.samples.begin() + 1000, out.samples.end());
  EXPECT_LT(dsp::rms(tail), 0.05);  // notched away
  EXPECT_GT(f.power_watts(), 0.0);
  EXPECT_LT(f.power_watts(), 1e-6);  // digital conditioning is cheap
}

TEST(CsEncoder, OutputRateAndFrameCount) {
  auto tech = default_tech();
  auto design = default_design();
  design.cs_m = 96;
  auto phi = cs::SparseBinaryMatrix::generate(96, 384, 2, 5);
  blocks::CsEncoderBlock enc("enc", tech, design, phi, 1, 2);
  const auto in = sine_wave(2048.0, 10.0, 0.1, 4.0);
  const auto out = enc.process({in})[0];
  // 4 s at 537.6 Hz = 2150 samples -> 5 full frames of 384 -> 5*96 outputs.
  EXPECT_EQ(out.size(), 5u * 96u);
  EXPECT_NEAR(out.fs, design.adc_rate_hz(), 1e-9);
}

TEST(CsEncoder, IdealModeMatchesEffectiveMatrix) {
  auto tech = default_tech();
  auto design = default_design();
  design.cs_m = 32;
  design.cs_n_phi = 64;
  auto phi = cs::SparseBinaryMatrix::generate(32, 64, 2, 9);
  blocks::CsEncoderOptions opts;
  opts.enable_mismatch = false;
  opts.enable_noise = false;
  opts.enable_leakage = false;
  blocks::CsEncoderBlock enc("enc", tech, design, phi, 1, 2, opts);

  // One exact frame at f_sample so interpolation is trivial: input already
  // at f_sample.
  const double f_sample = design.f_sample_hz();
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.15 * static_cast<double>(i));
  }
  const Waveform in(f_sample, x);
  const auto out = enc.process({in})[0];

  const auto gains = enc.nominal_gains();
  const auto eff = cs::effective_matrix(phi, gains.a, gains.b);
  const auto expected = linalg::matvec(eff, x);
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-12) << "measurement " << i;
  }
}

TEST(CsEncoder, NoiseAndMismatchPerturbMeasurements) {
  auto tech = default_tech();
  auto design = default_design();
  design.cs_m = 32;
  design.cs_n_phi = 64;
  auto phi = cs::SparseBinaryMatrix::generate(32, 64, 2, 9);

  blocks::CsEncoderOptions ideal;
  ideal.enable_mismatch = false;
  ideal.enable_noise = false;
  blocks::CsEncoderBlock enc_ideal("a", tech, design, phi, 1, 2, ideal);
  blocks::CsEncoderBlock enc_real("b", tech, design, phi, 1, 2, {});

  const Waveform in(design.f_sample_hz(), std::vector<double>(64, 0.3));
  const auto y0 = enc_ideal.process({in})[0];
  const auto y1 = enc_real.process({in})[0];
  double diff = 0.0;
  for (std::size_t i = 0; i < y0.size(); ++i) diff += std::fabs(y0[i] - y1[i]);
  EXPECT_GT(diff, 0.0);
  // ... but only slightly (sub-mV scale errors on ~0.1 V measurements).
  EXPECT_LT(diff / static_cast<double>(y0.size()), 2e-3);
}

TEST(CsEncoder, LeakageDroopsHeldValues) {
  auto tech = default_tech();
  auto design = default_design();
  design.cs_m = 32;
  design.cs_n_phi = 64;
  auto phi = cs::SparseBinaryMatrix::generate(32, 64, 2, 9);
  blocks::CsEncoderOptions leaky;
  leaky.enable_mismatch = false;
  leaky.enable_noise = false;
  leaky.enable_leakage = true;
  leaky.i_leak_override_a = 1e-13;  // mild leak for a measurable droop
  blocks::CsEncoderBlock enc_leak("a", tech, design, phi, 1, 2, leaky);
  blocks::CsEncoderOptions ideal = leaky;
  ideal.enable_leakage = false;
  blocks::CsEncoderBlock enc_ideal("b", tech, design, phi, 1, 2, ideal);

  const Waveform in(design.f_sample_hz(), std::vector<double>(64, 0.5));
  const auto y_leak = enc_leak.process({in})[0];
  const auto y_ideal = enc_ideal.process({in})[0];
  double leaked = 0.0, held = 0.0;
  for (std::size_t i = 0; i < y_leak.size(); ++i) {
    leaked += y_leak[i];
    held += y_ideal[i];
  }
  EXPECT_LT(leaked, held);  // droop discharges toward ground
}

TEST(CsEncoder, AreaCountsAllCapacitors) {
  auto tech = default_tech();
  auto design = default_design();
  design.cs_m = 75;
  auto phi = cs::SparseBinaryMatrix::generate(75, 384, 2, 5);
  blocks::CsEncoderBlock enc("enc", tech, design, phi, 1, 2);
  const double expected =
      (75.0 * design.cs_c_hold_f + 2.0 * design.cs_c_sample_f) / tech.c_u_min_f;
  EXPECT_NEAR(enc.area_unit_caps(), expected, 1e-9);
}

TEST(CsEncoder, RejectsMismatchedMatrix) {
  auto tech = default_tech();
  auto design = default_design();
  design.cs_m = 75;
  auto phi = cs::SparseBinaryMatrix::generate(50, 384, 2, 5);  // wrong M
  EXPECT_THROW(blocks::CsEncoderBlock("enc", tech, design, phi, 1, 2), Error);
}

TEST(SampleHold, ApertureJitterMatchesSlewNoiseBound) {
  // For a full-scale tone at f, rms jitter sigma_t bounds the SNR at
  // -20 log10(2 pi f sigma_t). Use a fast tone so jitter dominates kT/C.
  auto tech = default_tech();
  auto design = default_design();
  const double f_tone = 200.0;
  const double sigma_t = 2e-5;  // 20 us rms (exaggerated, for a clear floor)
  blocks::SampleHoldBlock sh("sh", tech, design, 5, sigma_t);
  const auto in = sine_wave(16384.0, f_tone, 0.9, 30.0);
  const auto out = sh.process({in})[0];
  const auto a = dsp::analyze_tone(out.samples, out.fs);
  const double expected_snr =
      -20.0 * std::log10(2.0 * std::numbers::pi * f_tone * sigma_t);
  EXPECT_NEAR(a.sndr_db, expected_snr, 1.5);
}

TEST(SampleHold, ZeroJitterIsDefaultAndHarmless) {
  auto tech = default_tech();
  auto design = default_design();
  blocks::SampleHoldBlock plain("a", tech, design, 5);
  blocks::SampleHoldBlock zero("b", tech, design, 5, 0.0);
  const auto in = sine_wave(8192.0, 20.0, 0.5, 2.0);
  EXPECT_EQ(plain.process({in})[0].samples, zero.process({in})[0].samples);
}

TEST(SampleHold, RejectsAbsurdJitter) {
  auto tech = default_tech();
  auto design = default_design();
  EXPECT_THROW(blocks::SampleHoldBlock("sh", tech, design, 5, -1e-6), Error);
  EXPECT_THROW(blocks::SampleHoldBlock("sh", tech, design, 5, 1.0), Error);
}
