// Level-crossing ADC: event generation, reconstruction quality, timer
// quantization and the signal-dependent power model.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "blocks/lc_adc.hpp"
#include "blocks/sources.hpp"
#include "dsp/metrics.hpp"
#include "util/error.hpp"

using namespace efficsense;
using sim::Waveform;

namespace {

power::TechnologyParams tech;

Waveform sine_wave(double fs, double f, double amp, double dur) {
  blocks::SineSource s("s", fs, dur, f, amp);
  return s.process({}).front();
}

}  // namespace

TEST(LcAdc, DcInputProducesNoEvents) {
  power::DesignParams d;
  blocks::LcAdcBlock lc("lc", tech, d);
  const Waveform w(2048.0, std::vector<double>(4096, 0.2));
  const auto out = lc.process({w})[0];
  EXPECT_EQ(lc.last_event_count(), 0u);
  // Reconstruction holds the initial level.
  for (double v : out.samples) EXPECT_NEAR(v, 0.203125, 1e-9);  // nearest 8-bit level (26 * LSB)
}

TEST(LcAdc, RampCrossesExpectedLevelCount) {
  power::DesignParams d;
  blocks::LcAdcConfig cfg;
  cfg.levels_bits = 6;  // LSB = 2/64 = 31.25 mV
  blocks::LcAdcBlock lc("lc", tech, d, cfg);
  // Ramp from -0.5 V to +0.5 V: crosses ~ 1.0 / 0.03125 = 32 levels.
  std::vector<double> ramp(4096);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = -0.5 + static_cast<double>(i) / 4095.0;
  }
  lc.process({Waveform(2048.0, ramp)});
  EXPECT_NEAR(static_cast<double>(lc.last_event_count()), 32.0, 2.0);
}

TEST(LcAdc, EventRateScalesWithAmplitudeAndFrequency) {
  power::DesignParams d;
  blocks::LcAdcBlock lc("lc", tech, d);
  lc.process({sine_wave(8192.0, 10.0, 0.3, 4.0)});
  const double rate_low = lc.last_event_rate_hz();
  lc.process({sine_wave(8192.0, 10.0, 0.6, 4.0)});
  const double rate_big = lc.last_event_rate_hz();
  lc.process({sine_wave(8192.0, 40.0, 0.3, 4.0)});
  const double rate_fast = lc.last_event_rate_hz();
  EXPECT_GT(rate_big, 1.5 * rate_low);   // double amplitude -> ~2x crossings
  EXPECT_GT(rate_fast, 3.0 * rate_low);  // 4x frequency -> ~4x crossings
}

TEST(LcAdc, ReconstructionQualityImprovesWithLevels) {
  power::DesignParams d;
  const auto tone = sine_wave(8192.0, 20.0, 0.8, 4.0);
  double prev_snr = -100.0;
  for (int bits : {4, 6, 8}) {
    blocks::LcAdcConfig cfg;
    cfg.levels_bits = bits;
    blocks::LcAdcBlock lc("lc", tech, d, cfg);
    const auto out = lc.process({tone})[0];
    const auto a = dsp::analyze_tone(out.samples, out.fs);
    EXPECT_GT(a.sndr_db, prev_snr) << bits << " bits";
    prev_snr = a.sndr_db;
  }
  EXPECT_GT(prev_snr, 30.0);  // 8-bit levels on a full-scale sine
}

TEST(LcAdc, OutputOnUniformGrid) {
  power::DesignParams d;
  blocks::LcAdcBlock lc("lc", tech, d);
  const auto out = lc.process({sine_wave(2048.0, 5.0, 0.5, 2.0)})[0];
  EXPECT_DOUBLE_EQ(out.fs, d.f_sample_hz());
  EXPECT_EQ(out.size(), static_cast<std::size_t>(2.0 * d.f_sample_hz()));
}

TEST(LcAdc, PowerGrowsWithEventRate) {
  power::DesignParams d;
  blocks::LcAdcBlock lc("lc", tech, d);
  lc.process({Waveform(2048.0, std::vector<double>(4096, 0.0))});
  const double p_idle = lc.power_watts();
  const double tx_idle = lc.tx_power_watts();
  lc.process({sine_wave(8192.0, 30.0, 0.9, 4.0)});
  const double p_busy = lc.power_watts();
  EXPECT_GT(p_busy, p_idle);
  EXPECT_DOUBLE_EQ(tx_idle, 0.0);
  EXPECT_GT(lc.tx_power_watts(), 0.0);
  EXPECT_DOUBLE_EQ(lc.tx_power_watts(),
                   lc.last_event_rate_hz() * lc.bits_per_event() * tech.e_bit_j);
}

TEST(LcAdc, SaturatesAtFullScale) {
  power::DesignParams d;
  blocks::LcAdcBlock lc("lc", tech, d);
  const auto out = lc.process({sine_wave(8192.0, 5.0, 3.0, 2.0)})[0];
  for (double v : out.samples) {
    EXPECT_LE(std::fabs(v), d.v_fs / 2.0 + 1e-12);
  }
}

TEST(LcAdc, ResetClearsCounters) {
  power::DesignParams d;
  blocks::LcAdcBlock lc("lc", tech, d);
  lc.process({sine_wave(8192.0, 10.0, 0.5, 1.0)});
  EXPECT_GT(lc.last_event_count(), 0u);
  lc.reset();
  EXPECT_EQ(lc.last_event_count(), 0u);
  EXPECT_DOUBLE_EQ(lc.last_event_rate_hz(), 0.0);
}

TEST(LcAdc, RejectsBadConfig) {
  power::DesignParams d;
  blocks::LcAdcConfig bad;
  bad.levels_bits = 1;
  EXPECT_THROW(blocks::LcAdcBlock("lc", tech, d, bad), Error);
  bad = {};
  bad.timer_bits = 1;
  EXPECT_THROW(blocks::LcAdcBlock("lc", tech, d, bad), Error);
}

TEST(LcAdc, AreaIsLevelDac) {
  power::DesignParams d;
  blocks::LcAdcConfig cfg;
  cfg.levels_bits = 6;
  blocks::LcAdcBlock lc("lc", tech, d, cfg);
  EXPECT_DOUBLE_EQ(lc.area_unit_caps(), 64.0);
}
