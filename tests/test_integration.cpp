// End-to-end integration: full chains on sines and EEG, the evaluator, the
// sweeper, and the qualitative trends the paper's figures rely on.

#include <gtest/gtest.h>

#include "blocks/sources.hpp"
#include "core/evaluator.hpp"
#include "core/study.hpp"
#include "util/cache.hpp"
#include "dsp/metrics.hpp"
#include "eeg/dataset.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

using namespace efficsense;
using namespace efficsense::core;

namespace {

/// Small shared fixtures (built once; the detector is the slow part).
struct World {
  power::TechnologyParams tech;
  eeg::Dataset dataset;
  classify::EpilepsyDetector detector;

  World()
      : dataset(eeg::make_dataset(eeg::Generator{eeg::GeneratorConfig{}}, 4, 4,
                                  11)),
        detector(classify::EpilepsyDetector::train(
            eeg::make_dataset(eeg::Generator{eeg::GeneratorConfig{}}, 12, 12,
                              22),
            [] {
              classify::DetectorConfig cfg;
              cfg.train.epochs = 40;
              return cfg;
            }())) {}
};

World& world() {
  static World w;
  return w;
}

}  // namespace

TEST(EndToEnd, BaselineChainDigitizesSineAtExpectedQuality) {
  power::DesignParams d;
  d.lna_noise_vrms = 1e-6;
  auto chain = build_baseline_chain(world().tech, d, {});
  blocks::SineSource tone("t", 8192.0, 8.0, 50.0,
                          0.9 * (d.v_fs / 2.0) / d.lna_gain);
  const auto out = run_chain(*chain, tone.process({}).front());
  const auto a = dsp::analyze_tone(out.samples, out.fs);
  EXPECT_GT(a.sndr_db, 38.0);
  EXPECT_LT(a.sndr_db, 52.0);
}

TEST(EndToEnd, SnrImprovesWithLowerNoiseFloor) {
  double prev_snr = -100.0;
  for (double uv : {20.0, 5.0, 1.0}) {
    power::DesignParams d;
    d.lna_noise_vrms = uv * 1e-6;
    auto chain = build_baseline_chain(world().tech, d, {});
    blocks::SineSource tone("t", 8192.0, 6.0, 50.0,
                            0.9 * (d.v_fs / 2.0) / d.lna_gain);
    const auto out = run_chain(*chain, tone.process({}).front());
    const auto a = dsp::analyze_tone(out.samples, out.fs);
    EXPECT_GT(a.sndr_db, prev_snr) << uv << " uV";
    prev_snr = a.sndr_db;
  }
}

TEST(EndToEnd, EvaluatorDeterministic) {
  const Evaluator eval(world().tech, &world().dataset, &world().detector);
  power::DesignParams d;
  d.lna_noise_vrms = 4e-6;
  const auto m1 = eval.evaluate(d);
  const auto m2 = eval.evaluate(d);
  EXPECT_DOUBLE_EQ(m1.snr_db, m2.snr_db);
  EXPECT_DOUBLE_EQ(m1.accuracy, m2.accuracy);
  EXPECT_DOUBLE_EQ(m1.power_w, m2.power_w);
}

TEST(EndToEnd, BaselineEvaluatorMetricsSane) {
  const Evaluator eval(world().tech, &world().dataset, &world().detector);
  power::DesignParams d;
  d.lna_noise_vrms = 2e-6;
  const auto m = eval.evaluate(d);
  EXPECT_GT(m.snr_db, 15.0);
  EXPECT_GE(m.accuracy, 0.85);
  EXPECT_NEAR(m.power_w, 8.3e-6, 1.0e-6);  // LNA ~4 uW + TX 4.3 uW
  EXPECT_EQ(m.segments_evaluated, world().dataset.size());
  EXPECT_GT(m.power_breakdown.watts_of(kTxBlock), 4e-6);
  EXPECT_GT(m.area_unit_caps, 200.0);
}

TEST(EndToEnd, CsChainReconstructsAndDetects) {
  const Evaluator eval(world().tech, &world().dataset, &world().detector);
  power::DesignParams d;
  d.lna_noise_vrms = 10e-6;
  d.cs_m = 96;
  const auto m = eval.evaluate(d);
  EXPECT_GT(m.snr_db, 3.0);       // reconstruction carries signal
  EXPECT_GE(m.accuracy, 0.85);    // detection survives compression
  EXPECT_LT(m.power_w, 3e-6);     // far below the baseline's ~8 uW
  EXPECT_GT(m.power_breakdown.watts_of(kCsEncoderBlock), 0.0);
}

TEST(EndToEnd, CsBeatsBaselineOnPowerAtMatchedAccuracy) {
  // The paper's headline trend, at miniature scale.
  const Evaluator eval(world().tech, &world().dataset, &world().detector);
  power::DesignParams baseline;
  baseline.lna_noise_vrms = 2e-6;
  power::DesignParams cs = baseline;
  cs.lna_noise_vrms = 10e-6;
  cs.cs_m = 96;
  const auto mb = eval.evaluate(baseline);
  const auto mc = eval.evaluate(cs);
  EXPECT_GE(mc.accuracy, mb.accuracy - 0.13);
  EXPECT_LT(mc.power_w, mb.power_w / 2.5);
  // ... while paying in capacitor area (Fig. 9's trade-off).
  EXPECT_GT(mc.area_unit_caps, 10.0 * mb.area_unit_caps);
}

TEST(EndToEnd, CsTransmitsFewerBits) {
  power::DesignParams d;
  d.cs_m = 96;
  EXPECT_NEAR(d.bit_rate(), power::DesignParams{}.bit_rate() / 4.0, 1e-9);
}

TEST(EndToEnd, SweeperGridMatchesPointwiseEvaluation) {
  const Evaluator eval(world().tech, &world().dataset, &world().detector);
  EvalOptions opts;
  opts.max_segments = 4;
  const Evaluator eval_fast(world().tech, &world().dataset, &world().detector,
                            opts);
  const Sweeper sweeper(&eval_fast);
  DesignSpace space;
  space.add_axis("lna_noise_vrms", {2e-6, 10e-6});
  space.add_axis("adc_bits", {6, 8});
  const auto results = sweeper.run(power::DesignParams{}, space);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    const auto direct = eval_fast.evaluate(r.design);
    EXPECT_DOUBLE_EQ(r.metrics.snr_db, direct.snr_db);
    EXPECT_DOUBLE_EQ(r.metrics.power_w, direct.power_w);
  }
}

TEST(EndToEnd, SweeperParallelMatchesSequential) {
  EvalOptions opts;
  opts.max_segments = 2;
  const Evaluator eval(world().tech, &world().dataset, &world().detector, opts);
  const Sweeper sweeper(&eval);
  DesignSpace space;
  space.add_axis("lna_noise_vrms", {2e-6, 6e-6, 12e-6});
  ThreadPool pool(3);
  const auto seq = sweeper.run(power::DesignParams{}, space);
  const auto par = sweeper.run(power::DesignParams{}, space, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq[i].metrics.snr_db, par[i].metrics.snr_db);
    EXPECT_DOUBLE_EQ(seq[i].metrics.accuracy, par[i].metrics.accuracy);
  }
}

TEST(EndToEnd, ProgressCallbackCoversAllPoints) {
  EvalOptions opts;
  opts.max_segments = 1;
  const Evaluator eval(world().tech, &world().dataset, &world().detector, opts);
  const Sweeper sweeper(&eval);
  DesignSpace space;
  space.add_axis("adc_bits", {6, 7, 8});
  std::size_t last_done = 0, last_total = 0;
  sweeper.run(power::DesignParams{}, space, nullptr,
              [&](std::size_t done, std::size_t total) {
                last_done = done;
                last_total = total;
              });
  EXPECT_EQ(last_done, 3u);
  EXPECT_EQ(last_total, 3u);
}

TEST(EndToEnd, ProgressMonotonicUnderPool) {
  EvalOptions opts;
  opts.max_segments = 1;
  const Evaluator eval(world().tech, &world().dataset, &world().detector, opts);
  const Sweeper sweeper(&eval);
  DesignSpace space;
  space.add_axis("adc_bits", {6, 7, 8});
  space.add_axis("lna_noise_vrms", {2e-6, 6e-6, 12e-6});
  ThreadPool pool(4);
  // Progress callbacks are serialized and strictly increasing even with
  // workers finishing out of order; the final call always reports total.
  std::size_t prev = 0;
  bool strictly_increasing = true;
  sweeper.run(power::DesignParams{}, space, &pool,
              [&](std::size_t done, std::size_t total) {
                EXPECT_EQ(total, 9u);
                if (done <= prev) strictly_increasing = false;
                prev = done;
              });
  EXPECT_TRUE(strictly_increasing);
  EXPECT_EQ(prev, 9u);
  // The sweep/progress gauge mirrors the high-water mark.
  EXPECT_GE(obs::gauge("sweep/progress").value(), 9.0);
}

TEST(EndToEnd, HigherResolutionCostsMorePower) {
  const Evaluator eval(world().tech, &world().dataset, &world().detector);
  power::DesignParams d6, d8;
  d6.adc_bits = 6;
  d8.adc_bits = 8;
  EvalOptions opts;
  opts.max_segments = 1;
  const Evaluator fast(world().tech, &world().dataset, &world().detector, opts);
  EXPECT_LT(fast.evaluate(d6).power_w, fast.evaluate(d8).power_w);
}

TEST(EndToEnd, MoreMeasurementsImproveCsSnr) {
  EvalOptions opts;
  opts.max_segments = 2;
  const Evaluator eval(world().tech, &world().dataset, &world().detector, opts);
  power::DesignParams lo, hi;
  lo.cs_m = 75;
  hi.cs_m = 192;
  lo.lna_noise_vrms = hi.lna_noise_vrms = 5e-6;
  const auto m_lo = eval.evaluate(lo);
  const auto m_hi = eval.evaluate(hi);
  EXPECT_GT(m_hi.snr_db, m_lo.snr_db);
  EXPECT_GT(m_hi.power_w, m_lo.power_w);  // more conversions + bits
}

#include "core/monte_carlo.hpp"

TEST(EndToEnd, MonteCarloMismatchSweep) {
  EvalOptions opts;
  opts.max_segments = 2;
  const Evaluator eval(world().tech, &world().dataset, &world().detector, opts);
  power::DesignParams d;
  d.cs_m = 96;
  d.lna_noise_vrms = 6e-6;
  MonteCarloOptions mc;
  mc.instances = 4;
  mc.min_accuracy = 0.5;
  const auto r = monte_carlo(eval, d, mc);
  ASSERT_EQ(r.instances.size(), 4u);
  // Mismatch must actually vary across instances (different fabrications).
  bool any_snr_diff = false;
  for (std::size_t i = 1; i < r.instances.size(); ++i) {
    if (r.instances[i].snr_db != r.instances[0].snr_db) any_snr_diff = true;
  }
  EXPECT_TRUE(any_snr_diff);
  // Power is analytic and mismatch-independent.
  for (const auto& m : r.instances) {
    EXPECT_DOUBLE_EQ(m.power_w, r.instances[0].power_w);
  }
  EXPECT_GE(r.yield, 0.0);
  EXPECT_LE(r.yield, 1.0);
  EXPECT_GE(r.snr_db.max, r.snr_db.mean);
  EXPECT_LE(r.snr_db.min, r.snr_db.mean);
}

TEST(EndToEnd, MonteCarloDeterministic) {
  EvalOptions opts;
  opts.max_segments = 1;
  const Evaluator eval(world().tech, &world().dataset, &world().detector, opts);
  power::DesignParams d;
  d.cs_m = 96;
  MonteCarloOptions mc;
  mc.instances = 3;
  const auto a = monte_carlo(eval, d, mc);
  const auto b = monte_carlo(eval, d, mc);
  EXPECT_DOUBLE_EQ(a.snr_db.mean, b.snr_db.mean);
  EXPECT_DOUBLE_EQ(a.accuracy.mean, b.accuracy.mean);
}

TEST(EndToEnd, MonteCarloLanesBitIdenticalToScalarPath) {
  // The batched SoA engine: instances grouped into K-wide lanes must
  // reproduce the scalar per-instance path bit-for-bit, including a partial
  // trailing group (5 instances at lanes=2 -> groups of 2+2+1; the size-1
  // group falls back to scalar evaluation inside monte_carlo).
  EvalOptions opts;
  opts.max_segments = 2;
  const Evaluator eval(world().tech, &world().dataset, &world().detector, opts);
  power::DesignParams d;
  d.cs_m = 96;
  d.lna_noise_vrms = 6e-6;
  for (const bool vary_noise : {false, true}) {
    MonteCarloOptions scalar;
    scalar.instances = 5;
    scalar.lanes = 1;
    scalar.min_accuracy = 0.5;
    scalar.vary_noise_streams = vary_noise;
    scalar.threads = 1;
    MonteCarloOptions batched = scalar;
    batched.lanes = 8;  // clamps to 5: one full-width group
    MonteCarloOptions grouped = scalar;
    grouped.lanes = 2;  // 2 + 2 + 1: exercises the remainder group

    const auto a = monte_carlo(eval, d, scalar);
    for (const auto* r : {&batched, &grouped}) {
      const auto b = monte_carlo(eval, d, *r);
      ASSERT_EQ(b.instances.size(), a.instances.size());
      for (std::size_t i = 0; i < a.instances.size(); ++i) {
        EXPECT_DOUBLE_EQ(b.instances[i].snr_db, a.instances[i].snr_db)
            << "lanes=" << r->lanes << " instance " << i
            << (vary_noise ? " (varied noise)" : "");
        EXPECT_DOUBLE_EQ(b.instances[i].accuracy, a.instances[i].accuracy);
        EXPECT_DOUBLE_EQ(b.instances[i].power_w, a.instances[i].power_w);
      }
      EXPECT_DOUBLE_EQ(b.snr_db.mean, a.snr_db.mean);
      EXPECT_DOUBLE_EQ(b.yield, a.yield);
    }
  }
}

TEST(EndToEnd, MonteCarloLanesMatchScalarOnUnbatchedArchitecture) {
  // cs_active has no batched model: the grouped path must transparently
  // fall back to per-instance scalar evaluation with identical results.
  EvalOptions opts;
  opts.max_segments = 1;
  const Evaluator eval(world().tech, &world().dataset, &world().detector, opts);
  power::DesignParams d;
  d.cs_m = 96;
  d.cs_style = power::CsStyle::ActiveIntegrator;
  MonteCarloOptions scalar;
  scalar.instances = 3;
  scalar.lanes = 1;
  MonteCarloOptions batched = scalar;
  batched.lanes = 4;
  const auto a = monte_carlo(eval, d, scalar);
  const auto b = monte_carlo(eval, d, batched);
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.instances[i].snr_db, a.instances[i].snr_db);
    EXPECT_DOUBLE_EQ(b.instances[i].accuracy, a.instances[i].accuracy);
  }
}

TEST(EndToEnd, StudyRunsAndCaches) {
  // A miniature end-to-end study: tiny dataset, 2-point grids. The second
  // run must come entirely from the file cache and agree bit-for-bit.
  StudyConfig cfg;
  cfg.eval_segments = 4;
  cfg.train_segments = 8;
  cfg.noise_grid_uv = {4.0, 12.0};
  cfg.bits_grid = {8};
  cfg.dac_cu_grid_f = {1e-15};
  cfg.cs_m_grid = {96};
  cfg.cs_c_hold_grid_f = {1e-12};
  cfg.seed = 777123;  // unique cache namespace for this test

  Study first(cfg);
  const auto a = first.run();
  ASSERT_EQ(a.baseline.size(), 2u);
  ASSERT_EQ(a.cs.size(), 2u);
  for (const auto& r : a.baseline) {
    EXPECT_FALSE(r.design.uses_cs());
    EXPECT_GT(r.metrics.power_w, 0.0);
  }
  for (const auto& r : a.cs) EXPECT_TRUE(r.design.uses_cs());

  std::vector<std::string> log_lines;
  Study second(cfg);
  const auto b = second.run([&](const std::string& l) { log_lines.push_back(l); });
  bool loaded_from_cache = false;
  for (const auto& l : log_lines) {
    if (l.find("cache") != std::string::npos) loaded_from_cache = true;
  }
  EXPECT_TRUE(loaded_from_cache);
  ASSERT_EQ(b.baseline.size(), a.baseline.size());
  for (std::size_t i = 0; i < a.baseline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.baseline[i].metrics.snr_db, b.baseline[i].metrics.snr_db);
    EXPECT_DOUBLE_EQ(a.baseline[i].metrics.accuracy,
                     b.baseline[i].metrics.accuracy);
  }
  for (std::size_t i = 0; i < a.cs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cs[i].metrics.snr_db, b.cs[i].metrics.snr_db);
    EXPECT_DOUBLE_EQ(a.cs[i].metrics.power_w, b.cs[i].metrics.power_w);
  }
  // Detector accessible after run().
  EXPECT_GT(second.detector().training_accuracy(), 0.5);

  // Clean this test's cache entries so repeated ctest runs re-exercise the
  // compute path.
  FileCache cache = default_cache();
  cache.erase(cfg.cache_key("detector"));
  cache.erase(cfg.cache_key("sweep-baseline"));
  cache.erase(cfg.cache_key("sweep-cs"));
}
