// Filters and resampling: Butterworth magnitude responses, RBJ notch /
// bandpass, FIR design, rational resampling and fractional-delay sampling.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/biquad.hpp"
#include "dsp/fir.hpp"
#include "dsp/metrics.hpp"
#include "dsp/resample.hpp"
#include "util/error.hpp"

using namespace efficsense;

namespace {

std::vector<double> sine(double fs, double f, double amp, std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * f *
                          static_cast<double>(i) / fs);
  }
  return x;
}

/// Steady-state output amplitude of a filter for a tone (skips the
/// transient half of the record).
double tone_gain(dsp::BiquadCascade& filt, double fs, double f) {
  const auto x = sine(fs, f, 1.0, 8192);
  filt.reset();
  const auto y = filt.process(x);
  const std::vector<double> tail(y.begin() + 4096, y.end());
  return dsp::rms(tail) * std::numbers::sqrt2;
}

}  // namespace

TEST(Butterworth, LowpassDcGainIsUnity) {
  auto f = dsp::butterworth_lowpass(4, 100.0, 2048.0);
  EXPECT_NEAR(f.magnitude(0.0, 2048.0), 1.0, 1e-9);
}

TEST(Butterworth, LowpassCutoffIsMinus3dB) {
  for (std::size_t order : {2u, 4u, 6u}) {
    auto f = dsp::butterworth_lowpass(order, 200.0, 4096.0);
    const double mag = f.magnitude(200.0, 4096.0);
    EXPECT_NEAR(20.0 * std::log10(mag), -3.01, 0.15) << "order " << order;
  }
}

TEST(Butterworth, RolloffMatchesOrder) {
  // An order-n Butterworth falls ~6n dB per octave above cutoff.
  auto f = dsp::butterworth_lowpass(4, 100.0, 8192.0);
  const double m1 = f.magnitude(400.0, 8192.0);
  const double m2 = f.magnitude(800.0, 8192.0);
  const double octave_db = 20.0 * std::log10(m1 / m2);
  EXPECT_NEAR(octave_db, 24.0, 1.5);
}

TEST(Butterworth, HighpassBlocksDcPassesHigh) {
  auto f = dsp::butterworth_highpass(4, 50.0, 4096.0);
  EXPECT_NEAR(f.magnitude(0.0, 4096.0), 0.0, 1e-9);
  EXPECT_NEAR(f.magnitude(1000.0, 4096.0), 1.0, 0.02);
}

TEST(Butterworth, TimeDomainMatchesMagnitudeResponse) {
  auto f = dsp::butterworth_lowpass(2, 300.0, 8192.0);
  for (double freq : {50.0, 300.0, 1200.0}) {
    const double measured = tone_gain(f, 8192.0, freq);
    const double predicted = f.magnitude(freq, 8192.0);
    EXPECT_NEAR(measured, predicted, 0.02) << "f=" << freq;
  }
}

TEST(Butterworth, RejectsBadParameters) {
  EXPECT_THROW(dsp::butterworth_lowpass(3, 100.0, 1000.0), Error);  // odd order
  EXPECT_THROW(dsp::butterworth_lowpass(2, 600.0, 1000.0), Error);  // > Nyquist
  EXPECT_THROW(dsp::butterworth_lowpass(2, 0.0, 1000.0), Error);
}

TEST(Rbj, NotchKillsCentreKeepsNeighbours) {
  auto f = dsp::rbj_notch(50.0, 10.0, 1024.0);
  EXPECT_LT(f.magnitude(50.0, 1024.0), 1e-6);
  EXPECT_GT(f.magnitude(20.0, 1024.0), 0.95);
  EXPECT_GT(f.magnitude(120.0, 1024.0), 0.95);
}

TEST(Rbj, BandpassPeaksAtCentre) {
  auto f = dsp::rbj_bandpass(100.0, 5.0, 4096.0);
  const double centre = f.magnitude(100.0, 4096.0);
  EXPECT_NEAR(centre, 1.0, 0.01);
  EXPECT_LT(f.magnitude(10.0, 4096.0), 0.2);
  EXPECT_LT(f.magnitude(1000.0, 4096.0), 0.2);
}

TEST(Biquad, ResetClearsState) {
  auto f = dsp::butterworth_lowpass(2, 100.0, 1024.0);
  const auto x = sine(1024.0, 30.0, 1.0, 256);
  const auto y1 = f.process(x);
  f.reset();
  const auto y2 = f.process(x);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Fir, LowpassDesignUnityDc) {
  const auto h = dsp::design_lowpass_fir(63, 100.0, 1000.0);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Fir, LinearPhaseSymmetry) {
  const auto h = dsp::design_lowpass_fir(63, 100.0, 1000.0);
  for (std::size_t i = 0; i < h.size() / 2; ++i) {
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
  }
}

TEST(Fir, FilterPassesLowBlocksHigh) {
  const auto h = dsp::design_lowpass_fir(101, 50.0, 1000.0);
  const auto low = dsp::fir_filter_same(h, sine(1000.0, 10.0, 1.0, 2000));
  const auto high = dsp::fir_filter_same(h, sine(1000.0, 300.0, 1.0, 2000));
  const std::vector<double> low_tail(low.begin() + 500, low.end() - 500);
  const std::vector<double> high_tail(high.begin() + 500, high.end() - 500);
  EXPECT_GT(dsp::rms(low_tail), 0.69);
  EXPECT_LT(dsp::rms(high_tail), 0.01);
}

TEST(Fir, ConvolveMatchesHandComputed) {
  const auto y = dsp::convolve({1, 2}, {1, 0, 3});
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
  EXPECT_DOUBLE_EQ(y[3], 6.0);
}

class ResampleProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ResampleProperty, PreservesToneFrequencyAndAmplitude) {
  const auto [up, down] = GetParam();
  const double fs = 1000.0;
  const double tone = 40.0;
  const auto x = sine(fs, tone, 1.0, 4000);
  const auto y = dsp::resample_rational(x, up, down);
  const double fs2 = fs * static_cast<double>(up) / static_cast<double>(down);
  ASSERT_GT(y.size(), 200u);
  const auto analysis = dsp::analyze_tone(
      std::vector<double>(y.begin() + 100, y.end() - 100), fs2);
  EXPECT_NEAR(analysis.fundamental_hz, tone, 1.0);
  EXPECT_GT(analysis.sndr_db, 30.0);
}

INSTANTIATE_TEST_SUITE_P(Ratios, ResampleProperty,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{2, 1},
                                           std::pair<std::size_t, std::size_t>{3, 1},
                                           std::pair<std::size_t, std::size_t>{3, 2},
                                           std::pair<std::size_t, std::size_t>{147, 50},
                                           std::pair<std::size_t, std::size_t>{1, 2}));

TEST(Resample, IdentityWhenRatioIsOne) {
  const auto x = sine(100.0, 7.0, 1.0, 50);
  EXPECT_EQ(dsp::resample_rational(x, 5, 5), x);
}

TEST(SampleAtTimes, LinearInterpolatesExactly) {
  const std::vector<double> ramp{0, 1, 2, 3, 4};
  const auto y = dsp::sample_at_times(ramp, 1.0, {0.5, 2.25, 3.75});
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 2.25);
  EXPECT_DOUBLE_EQ(y[2], 3.75);
}

TEST(SampleAtTimes, ClampsOutsideRecord) {
  const std::vector<double> x{1, 2, 3};
  const auto y = dsp::sample_at_times(x, 1.0, {-5.0, 99.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(SampleAtTimes, SincBeatsLinearOnSmoothSignal) {
  const double fs = 200.0;
  const auto x = sine(fs, 30.0, 1.0, 400);
  std::vector<double> times;
  for (int i = 0; i < 300; ++i) times.push_back(0.3 + i * 0.0031);
  const auto lin = dsp::sample_at_times(x, fs, times, dsp::Interp::Linear);
  const auto snc = dsp::sample_at_times(x, fs, times, dsp::Interp::Sinc8);
  double err_lin = 0.0, err_sinc = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double truth = std::sin(2.0 * std::numbers::pi * 30.0 * times[i]);
    err_lin += std::pow(lin[i] - truth, 2);
    err_sinc += std::pow(snc[i] - truth, 2);
  }
  EXPECT_LT(err_sinc, err_lin);
}

TEST(UniformTimes, SpacingMatchesRate) {
  const auto t = dsp::uniform_times(5, 250.0);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[4], 4.0 / 250.0);
}
