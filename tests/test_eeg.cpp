// Synthetic EEG substrate: determinism, class separability, spectral
// content, dataset assembly and the Step 4 upsampling path.

#include <gtest/gtest.h>

#include <cmath>

#include "cs/basis.hpp"
#include "dsp/metrics.hpp"
#include "dsp/resample.hpp"
#include "eeg/dataset.hpp"
#include "eeg/generator.hpp"
#include "util/error.hpp"

using namespace efficsense;

namespace {
eeg::Generator default_gen() { return eeg::Generator(eeg::GeneratorConfig{}); }
}  // namespace

TEST(Generator, SegmentShape) {
  const auto gen = default_gen();
  const auto w = gen.normal(1);
  EXPECT_DOUBLE_EQ(w.fs, 2048.0);
  EXPECT_EQ(w.size(), static_cast<std::size_t>(2048.0 * 23.6));
}

TEST(Generator, DeterministicPerSeed) {
  const auto gen = default_gen();
  EXPECT_EQ(gen.normal(7).samples, gen.normal(7).samples);
  EXPECT_NE(gen.normal(7).samples, gen.normal(8).samples);
  EXPECT_EQ(gen.seizure(7).samples, gen.seizure(7).samples);
  EXPECT_NE(gen.normal(7).samples, gen.seizure(7).samples);
}

TEST(Generator, BackgroundLevelMatchesConfig) {
  eeg::GeneratorConfig cfg;
  const eeg::Generator gen(cfg);
  const auto w = gen.normal(3);
  const double r = dsp::rms(w.samples);
  // Background + alpha: rms near (but above) the configured background.
  EXPECT_GT(r, cfg.background_rms_v * 0.8);
  EXPECT_LT(r, cfg.background_rms_v * 2.0);
}

TEST(Generator, SeizureHasHigherAmplitude) {
  // Per-segment levels vary (weak seizures and loud backgrounds exist by
  // design), so the amplitude gap is a distributional property.
  const auto gen = default_gen();
  double ratio_sum = 0.0;
  const int trials = 12;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    const double rn = dsp::rms(gen.normal(seed).samples);
    const double rs = dsp::rms(gen.seizure(seed).samples);
    EXPECT_GT(rs, 0.9 * rn) << "seed " << seed;  // never dramatically quieter
    ratio_sum += rs / rn;
  }
  EXPECT_GT(ratio_sum / trials, 1.5);  // clearly louder on average
}

TEST(Generator, SeizureAnnotationMatchesDischarge) {
  const auto gen = default_gen();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    eeg::IctalAnnotation a;
    const auto w = gen.seizure(seed, &a);
    ASSERT_GT(a.duration_s, 0.0);
    ASSERT_LE(a.end_s(), w.duration_s() + 1e-9);
    // The annotated span must be substantially louder than the rest.
    const auto i0 = static_cast<std::size_t>(a.onset_s * w.fs);
    const auto i1 = static_cast<std::size_t>(a.end_s() * w.fs);
    const std::vector<double> inside(w.samples.begin() + i0,
                                     w.samples.begin() + i1);
    std::vector<double> outside;
    outside.insert(outside.end(), w.samples.begin(), w.samples.begin() + i0);
    outside.insert(outside.end(), w.samples.begin() + i1, w.samples.end());
    if (outside.size() > w.fs) {  // need enough context to compare
      EXPECT_GT(dsp::rms(inside), 1.2 * dsp::rms(outside)) << "seed " << seed;
    }
  }
}

TEST(Dataset, SeizureSegmentsCarryAnnotations) {
  const auto gen = default_gen();
  const auto ds = eeg::make_dataset(gen, 3, 3, 77);
  for (const auto& seg : ds.segments) {
    if (seg.label == eeg::SegmentClass::Seizure) {
      ASSERT_TRUE(seg.ictal.has_value());
      EXPECT_GT(seg.ictal->duration_s, 0.0);
    } else {
      EXPECT_FALSE(seg.ictal.has_value());
    }
  }
}

TEST(Generator, SeizureEnergyConcentratedInSpikeWaveBand) {
  const auto gen = default_gen();
  const auto w = gen.seizure(11);
  const auto psd = dsp::welch_psd(w.samples, w.fs, 4096);
  const double discharge = dsp::band_power(psd, 2.5, 12.0);  // f0 + harmonics
  const double high = dsp::band_power(psd, 30.0, 100.0);
  EXPECT_GT(discharge, 20.0 * high);
}

TEST(Generator, NormalShowsAlphaRhythm) {
  eeg::GeneratorConfig cfg;
  cfg.alpha_rms_v = 25e-6;  // pronounced alpha for a clear test
  const eeg::Generator gen(cfg);
  const auto w = gen.normal(13);
  const auto psd = dsp::welch_psd(w.samples, w.fs, 8192);
  const double alpha = dsp::band_power(psd, 8.0, 12.0);
  const double beta = dsp::band_power(psd, 16.0, 24.0);
  EXPECT_GT(alpha, 2.0 * beta);
}

TEST(Generator, BandlimitedAboveFortyFiveHz) {
  const auto gen = default_gen();
  for (auto w : {gen.normal(2), gen.seizure(2)}) {
    const auto psd = dsp::welch_psd(w.samples, w.fs, 4096);
    const double in_band = dsp::band_power(psd, 0.5, 45.0);
    const double out_band = dsp::band_power(psd, 90.0, 500.0);
    EXPECT_GT(in_band, 100.0 * out_band);
  }
}

TEST(Generator, FramesAreCompressibleInDct) {
  // The property the CS experiments rely on (DESIGN.md): most frame energy
  // in few low-frequency DCT coefficients.
  const auto gen = default_gen();
  const auto w = gen.seizure(21);
  const auto sampled =
      dsp::sample_at_times(w.samples, w.fs, dsp::uniform_times(384, 537.6));
  const auto coeffs = cs::dct_forward(sampled);
  EXPECT_GT(cs::energy_in_top_k(coeffs, 60), 0.97);
}

TEST(Generator, BlinksAddTransients) {
  eeg::GeneratorConfig with;
  with.blink_rate_hz = 0.5;
  eeg::GeneratorConfig without = with;
  without.blink_rate_hz = 0.0;
  const auto w1 = eeg::Generator(with).normal(5);
  const auto w0 = eeg::Generator(without).normal(5);
  double max1 = 0.0, max0 = 0.0;
  for (double v : w1.samples) max1 = std::max(max1, std::fabs(v));
  for (double v : w0.samples) max0 = std::max(max0, std::fabs(v));
  EXPECT_GT(max1, max0 + 50e-6);  // blink bumps stick out
}

TEST(Generator, RejectsBadConfig) {
  eeg::GeneratorConfig cfg;
  cfg.fs_hz = 50.0;
  EXPECT_THROW(eeg::Generator{cfg}, Error);
  cfg = {};
  cfg.seizure_min_fraction = 0.9;
  cfg.seizure_max_fraction = 0.5;
  EXPECT_THROW(eeg::Generator{cfg}, Error);
}

TEST(Dataset, BalancedAndInterleaved) {
  const auto gen = default_gen();
  const auto ds = eeg::make_dataset(gen, 6, 6, 1);
  EXPECT_EQ(ds.size(), 12u);
  EXPECT_EQ(ds.count(eeg::SegmentClass::Normal), 6u);
  EXPECT_EQ(ds.count(eeg::SegmentClass::Seizure), 6u);
  // Any prefix stays roughly balanced (interleaving property).
  std::size_t seizures_in_first_half = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (ds.segments[i].label == eeg::SegmentClass::Seizure) {
      ++seizures_in_first_half;
    }
  }
  EXPECT_GE(seizures_in_first_half, 2u);
  EXPECT_LE(seizures_in_first_half, 4u);
}

TEST(Dataset, UnbalancedCountsHonoured) {
  const auto gen = default_gen();
  const auto ds = eeg::make_dataset(gen, 5, 2, 3);
  EXPECT_EQ(ds.count(eeg::SegmentClass::Normal), 5u);
  EXPECT_EQ(ds.count(eeg::SegmentClass::Seizure), 2u);
}

TEST(Dataset, DeterministicPerSeed) {
  const auto gen = default_gen();
  const auto a = eeg::make_dataset(gen, 3, 3, 42);
  const auto b = eeg::make_dataset(gen, 3, 3, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.segments[i].label, b.segments[i].label);
    EXPECT_EQ(a.segments[i].waveform.samples, b.segments[i].waveform.samples);
  }
}

TEST(Upsample, PaperRateConversion) {
  // The paper's Step 4: 173.61 Hz records upsampled to 512 Hz.
  eeg::GeneratorConfig cfg;
  cfg.fs_hz = 173.61;
  cfg.duration_s = 23.6;
  const eeg::Generator gen(cfg);
  const auto record = gen.normal(2);
  const auto up = eeg::upsample_record(record, 512.0);
  EXPECT_NEAR(up.fs, 512.0, 0.5);
  EXPECT_NEAR(up.duration_s(), record.duration_s(), 0.1);
}

TEST(Upsample, PreservesToneContent) {
  // A pure tone must survive the polyphase upsampling unharmed.
  const double fs = 173.61;
  std::vector<double> x(4096);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * 20.0 * static_cast<double>(i) / fs);
  }
  const auto up = eeg::upsample_record(sim::Waveform(fs, x), 512.0);
  const std::vector<double> tail(up.samples.begin() + 1000,
                                 up.samples.end() - 1000);
  const auto a = dsp::analyze_tone(tail, up.fs);
  EXPECT_NEAR(a.fundamental_hz, 20.0, 0.3);
  EXPECT_GT(a.sndr_db, 30.0);
}

TEST(Upsample, RejectsDownsampling) {
  const auto gen = default_gen();
  EXPECT_THROW(eeg::upsample_record(gen.normal(1), 100.0), Error);
}

// ---------------------------------------------------------------------------
// Lane-packed generation for the batched Monte-Carlo engine.

TEST(Generator, LanePackedSegmentsMatchScalarBitwise) {
  const auto gen = default_gen();
  const std::vector<std::uint64_t> seeds = {3, 14, 15, 92};

  const auto normal = gen.normal_lanes(seeds);
  EXPECT_FALSE(normal.uniform());
  ASSERT_EQ(normal.lanes(), seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    const auto w = gen.normal(seeds[k]);
    ASSERT_EQ(normal.samples(), w.samples.size());
    EXPECT_DOUBLE_EQ(normal.fs(), w.fs);
    const double* lane = normal.lane(k);
    for (std::size_t i = 0; i < w.samples.size(); ++i) {
      EXPECT_EQ(lane[i], w.samples[i]) << "lane " << k;
    }
  }

  std::vector<eeg::IctalAnnotation> anns;
  const auto seizure = gen.seizure_lanes(seeds, &anns);
  ASSERT_EQ(anns.size(), seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    eeg::IctalAnnotation a;
    const auto w = gen.seizure(seeds[k], &a);
    EXPECT_EQ(anns[k].onset_s, a.onset_s);
    EXPECT_EQ(anns[k].duration_s, a.duration_s);
    const double* lane = seizure.lane(k);
    for (std::size_t i = 0; i < w.samples.size(); ++i) {
      EXPECT_EQ(lane[i], w.samples[i]) << "lane " << k;
    }
  }

  EXPECT_THROW(gen.normal_lanes({}), Error);
}
