// The gateway daemon's test suite: wire-protocol round trips and a
// malformed-ingress corpus (every corruption earns its typed status, never
// a crash — this file is in the ASan/UBSan and TSan CI lanes), the
// backpressure primitives, pipeline bit-exactness against the offline
// path, and full server lifecycles over a unix socket — backpressure
// rejections, budget accounting across mid-session disconnects, drain with
// in-flight work, and the crash-honest heartbeat.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>

#include "arch/scenario.hpp"
#include "run/scenario.hpp"
#include "serve/client.hpp"
#include "serve/pipeline.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/status.hpp"
#include "serve/wire.hpp"
#include "util/cache.hpp"

using namespace efficsense;
using namespace efficsense::serve;

namespace {

std::string scratch_uds(const char* tag) {
  return "/tmp/effi_serve_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// --- Wire protocol ----------------------------------------------------------

TEST(ServeWire, FnvMatchesUtil) {
  const std::string s = "the journal's hash discipline";
  EXPECT_EQ(fnv1a_bytes(s.data(), s.size()), fnv1a(s));
}

TEST(ServeWire, HelloRoundTrip) {
  const Hello h{7, 1, 4096};
  const auto frame = encode_frame(FrameType::kHello, Status::kOk,
                                  encode_hello(h));
  // Skip the u32 length prefix, as the server does after read_frame.
  ParsedFrame parsed;
  ASSERT_EQ(parse_frame(
                reinterpret_cast<const std::uint8_t*>(frame.data()) + 4,
                frame.size() - 4, &parsed),
            Status::kOk);
  EXPECT_EQ(parsed.type, FrameType::kHello);
  const auto back = decode_hello(parsed.body, parsed.body_len);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tenant_id, 7u);
  EXPECT_EQ(back->scenario_id, 1u);
  EXPECT_EQ(back->node_count, 4096u);
}

TEST(ServeWire, DataRoundTripBitExact) {
  DataHeader h;
  h.scenario_id = 1;
  h.m = 75;
  h.phi_seed = 0xDEADBEEFCAFEULL;
  h.node_id = 99999;
  h.epoch_index = 12;
  std::vector<double> y = {1.5, -2.25e-6, 0.0, -0.0, 1e300, 5e-324};
  const auto body = encode_data(h, y.data(), y.size());
  Status why = Status::kOk;
  const auto back = decode_data(
      reinterpret_cast<const std::uint8_t*>(body.data()), body.size(), &why);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->header.phi_seed, h.phi_seed);
  EXPECT_EQ(back->header.node_id, h.node_id);
  ASSERT_EQ(back->y.size(), y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    // Bitwise, not ==: -0.0 and denormals must survive the wire.
    EXPECT_EQ(std::memcmp(&back->y[i], &y[i], sizeof(double)), 0) << i;
  }
}

TEST(ServeWire, DetectionErrorByeAckRoundTrips) {
  Detection d;
  d.node_id = 3;
  d.epoch_index = 8;
  d.score = 0.62521;
  d.n_samples = 1152;
  d.detected = 1;
  const auto db = encode_detection(d);
  const auto d2 = decode_detection(
      reinterpret_cast<const std::uint8_t*>(db.data()), db.size());
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(std::memcmp(&d2->score, &d.score, sizeof(double)), 0);
  EXPECT_EQ(d2->detected, 1);

  const ErrorBody e{5, 6, "tenant decode queue full"};
  const auto eb = encode_error(e);
  const auto e2 = decode_error(
      reinterpret_cast<const std::uint8_t*>(eb.data()), eb.size());
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->message, e.message);

  const ByeAck b{10, 9, 1};
  const auto bb = encode_bye_ack(b);
  const auto b2 = decode_bye_ack(
      reinterpret_cast<const std::uint8_t*>(bb.data()), bb.size());
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->frames_accepted, 10u);
  EXPECT_EQ(b2->frames_rejected, 1u);
}

TEST(ServeWire, MalformedFramesEarnTypedStatuses) {
  const auto frame =
      encode_frame(FrameType::kHello, Status::kOk, encode_hello({1, 0, 8}));
  std::vector<std::uint8_t> raw(frame.begin() + 4, frame.end());
  ParsedFrame out;

  auto corrupt = raw;
  corrupt[0] ^= 0xFF;  // magic
  EXPECT_EQ(parse_frame(corrupt.data(), corrupt.size(), &out),
            Status::kBadMagic);

  corrupt = raw;
  corrupt[4] = 99;  // version
  EXPECT_EQ(parse_frame(corrupt.data(), corrupt.size(), &out),
            Status::kBadVersion);

  corrupt = raw;
  corrupt[5] = 200;  // unknown frame type
  EXPECT_EQ(parse_frame(corrupt.data(), corrupt.size(), &out),
            Status::kBadFrameType);

  corrupt = raw;
  corrupt.back() ^= 0x01;  // body bit flip -> crc mismatch
  EXPECT_EQ(parse_frame(corrupt.data(), corrupt.size(), &out),
            Status::kBadCrc);

  corrupt = raw;
  corrupt[8] ^= 0x01;  // crc field itself
  EXPECT_EQ(parse_frame(corrupt.data(), corrupt.size(), &out),
            Status::kBadCrc);

  EXPECT_EQ(parse_frame(raw.data(), kHeaderBytes - 1, &out),
            Status::kTruncated);
  EXPECT_EQ(parse_frame(raw.data(), 0, &out), Status::kTruncated);
}

TEST(ServeWire, DataCountLiesAreTruncatedOrOversize) {
  DataHeader h;
  h.m = 2;
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  auto body = encode_data(h, y.data(), y.size());
  auto* bytes = reinterpret_cast<std::uint8_t*>(body.data());
  Status why = Status::kOk;

  // Declared count beyond the actual payload.
  bytes[32] = 200;
  EXPECT_FALSE(decode_data(bytes, body.size(), &why).has_value());
  EXPECT_EQ(why, Status::kTruncated);

  // Declared count beyond the whole-protocol cap.
  std::uint32_t huge = 0x7FFFFFFF;
  std::memcpy(bytes + 32, &huge, sizeof huge);
  EXPECT_FALSE(decode_data(bytes, body.size(), &why).has_value());
  EXPECT_EQ(why, Status::kOversize);

  // Shorter than even the fixed header.
  EXPECT_FALSE(decode_data(bytes, 10, &why).has_value());
  EXPECT_EQ(why, Status::kTruncated);
}

// Sanitizer chow: every single-byte corruption and every truncation of a
// real frame must parse to SOME status without reading out of bounds.
TEST(ServeWire, FuzzBitflipsAndTruncationsNeverCrash) {
  DataHeader h;
  h.m = 3;
  std::vector<double> y(9, 0.125);
  const auto frame = encode_frame(FrameType::kData, Status::kOk,
                                  encode_data(h, y.data(), y.size()));
  std::vector<std::uint8_t> raw(frame.begin() + 4, frame.end());

  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto mutant = raw;
    mutant[i] ^= 0x5A;
    ParsedFrame out;
    const Status st = parse_frame(mutant.data(), mutant.size(), &out);
    if (st == Status::kOk) {
      Status why = Status::kOk;
      (void)decode_data(out.body, out.body_len, &why);
    }
  }
  for (std::size_t len = 0; len <= raw.size(); ++len) {
    ParsedFrame out;
    const Status st = parse_frame(raw.data(), len, &out);
    if (st == Status::kOk) {
      Status why = Status::kOk;
      (void)decode_data(out.body, out.body_len, &why);
    }
  }
}

TEST(ServeWire, StatusTaxonomy) {
  EXPECT_TRUE(status_retryable(Status::kRetryBusy));
  EXPECT_TRUE(status_retryable(Status::kRetryBudget));
  EXPECT_TRUE(status_retryable(Status::kDraining));
  EXPECT_FALSE(status_retryable(Status::kBadCrc));
  EXPECT_FALSE(status_retryable(Status::kUnknownScenario));
  EXPECT_STREQ(status_name(Status::kBadMagic), "bad_magic");
  EXPECT_STREQ(status_name(Status::kInternal), "internal_error");
}

// --- Backpressure primitives ------------------------------------------------

TEST(ServeQueue, ByteBudgetChargesAndReleases) {
  ByteBudget b(100);
  EXPECT_TRUE(b.try_charge(60));
  EXPECT_TRUE(b.try_charge(40));
  EXPECT_FALSE(b.try_charge(1));
  b.release(40);
  EXPECT_TRUE(b.try_charge(30));
  EXPECT_EQ(b.used(), 90u);
  EXPECT_EQ(b.cap(), 100u);
}

TEST(ServeQueue, BoundedPushAndRoundRobinPop) {
  TenantQueues<int> q(2);
  EXPECT_EQ(q.push(1, 10), TenantQueues<int>::Push::kAccepted);
  EXPECT_EQ(q.push(1, 11), TenantQueues<int>::Push::kAccepted);
  EXPECT_EQ(q.push(1, 12), TenantQueues<int>::Push::kQueueFull);
  EXPECT_EQ(q.push(2, 20), TenantQueues<int>::Push::kAccepted);
  EXPECT_EQ(q.push(3, 30), TenantQueues<int>::Push::kAccepted);
  EXPECT_EQ(q.depth(), 4u);

  // Fair rotation across tenants regardless of arrival counts.
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 20);
  EXPECT_EQ(q.pop().value(), 30);
  EXPECT_EQ(q.pop().value(), 11);
}

TEST(ServeQueue, CloseDrainsBacklogThenEnds) {
  TenantQueues<int> q(8);
  q.push(1, 1);
  q.push(1, 2);
  q.close();
  EXPECT_EQ(q.push(1, 3), TenantQueues<int>::Push::kClosed);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ServeQueue, PopBlocksUntilPush) {
  TenantQueues<int> q(4);
  std::atomic<int> got{0};
  std::thread popper([&] { got = q.pop().value(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.push(5, 77);
  popper.join();
  EXPECT_EQ(got.load(), 77);
}

// --- Status heartbeat -------------------------------------------------------

TEST(ServeStatus, JsonRoundTrip) {
  ServeStatus s;
  s.updated_unix_s = 1754550000.25;
  s.interval_s = 5.0;
  s.uptime_s = 12.5;
  s.draining = true;
  s.complete = false;
  s.frames_in = 100;
  s.frames_accepted = 90;
  s.frames_rejected = 10;
  s.detections_out = 88;
  s.queued_bytes = 4096;
  s.qps_ewma = 123.5;
  s.stages.push_back({"decode", {}});
  s.stages.back().stats.count = 42;
  s.stages.back().stats.p99 = 0.015;

  const auto parsed = parse_serve_status(serve_status_to_json(s));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frames_in, 100u);
  EXPECT_EQ(parsed->frames_rejected, 10u);
  EXPECT_TRUE(parsed->draining);
  EXPECT_FALSE(parsed->complete);
  EXPECT_DOUBLE_EQ(parsed->qps_ewma, 123.5);
  ASSERT_EQ(parsed->stages.size(), 1u);
  EXPECT_EQ(parsed->stages[0].name, "decode");
  EXPECT_EQ(parsed->stages[0].stats.count, 42u);
  EXPECT_DOUBLE_EQ(parsed->stages[0].stats.p99, 0.015);

  EXPECT_FALSE(parse_serve_status("{\"noise\": true}").has_value());
}

TEST(ServeStatus, PrometheusSiblingPath) {
  EXPECT_EQ(prometheus_path_for("serve.status.json"), "serve.status.prom");
  EXPECT_EQ(prometheus_path_for("x/heartbeat"), "x/heartbeat.prom");
  EXPECT_EQ(prometheus_path_for(""), "");
}

// --- Scenario-backed pipeline and server ------------------------------------

// One shared scenario context for every decode-path test: the same small
// spec as examples/scenario_serve_smoke.json, so the detector blob caches
// across test runs and CI lanes.
class ServePipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (ctx_ != nullptr) return;
    const char* spec = R"({
      "name": "serve-smoke",
      "architecture": "auto",
      "axes": [{"name": "cs_m", "values": [0, 75]}],
      "eval": {"residual_tol": 0.02},
      "sweep": {"segments": 2, "train_segments": 4, "seed": 919}
    })";
    ctx_ = run::make_scenario_context(arch::scenario_from_json(spec))
               .release();
    pipeline_ = new DecodePipeline({ctx_});
  }

  static EpochRequest make_request(std::uint32_t m, std::uint64_t node_id,
                                   std::uint64_t phi_seed = 101) {
    EpochRequest req;
    req.header.scenario_id = 0;
    req.header.m = m;
    req.header.phi_seed = phi_seed;
    req.header.node_id = node_id;
    req.header.epoch_index = node_id % 5;
    const auto n_phi = std::size_t(ctx_->base.cs_n_phi);
    const std::size_t frames =
        (pipeline_->min_epoch_samples(0) + n_phi - 1) / n_phi;
    req.y.resize(frames * (m > 0 ? m : n_phi));
    std::uint64_t s = 0x9E3779B97F4A7C15ULL ^ (node_id + 1);
    for (auto& v : req.y) {
      s ^= s >> 12;
      s ^= s << 25;
      s ^= s >> 27;
      v = (double((s * 0x2545F4914F6CDD1DULL) >> 11) / double(1ULL << 53) -
           0.5) *
          2e-4;
    }
    return req;
  }

  static ServerConfig test_config(const std::string& uds) {
    ServerConfig c;
    c.uds_path = uds;
    c.tcp_port = -1;
    c.decode_threads = 2;
    c.status_path = "";
    return c;
  }

  static run::ScenarioContext* ctx_;
  static DecodePipeline* pipeline_;
};

run::ScenarioContext* ServePipelineTest::ctx_ = nullptr;
DecodePipeline* ServePipelineTest::pipeline_ = nullptr;

TEST_F(ServePipelineTest, ValidateRejectsUnservableRequests) {
  EXPECT_EQ(pipeline_->validate(make_request(75, 1)), Status::kOk);
  EXPECT_EQ(pipeline_->validate(make_request(0, 1)), Status::kOk);

  auto req = make_request(75, 1);
  req.header.scenario_id = 9;
  EXPECT_EQ(pipeline_->validate(req), Status::kUnknownScenario);

  req = make_request(75, 1);
  req.header.m = std::uint32_t(ctx_->base.cs_n_phi) + 1;
  EXPECT_EQ(pipeline_->validate(req), Status::kBadM);

  req = make_request(75, 1);
  req.y.pop_back();  // no longer a whole number of frames
  EXPECT_EQ(pipeline_->validate(req), Status::kBadM);

  req = make_request(75, 1);
  req.y.resize(75);  // one frame: far below one detector epoch
  EXPECT_EQ(pipeline_->validate(req), Status::kShortEpoch);

  req = make_request(75, 1);
  req.y.clear();
  EXPECT_EQ(pipeline_->validate(req), Status::kTruncated);
}

TEST_F(ServePipelineTest, DecodeIsDeterministicBitwise) {
  for (const std::uint32_t m : {std::uint32_t(75), std::uint32_t(0)}) {
    const auto req = make_request(m, 42);
    const auto a = pipeline_->decode(req);
    const auto b = pipeline_->decode(req);
    EXPECT_EQ(std::memcmp(&a.score, &b.score, sizeof(double)), 0);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.n_samples, b.n_samples);
    EXPECT_GT(a.n_samples, 0u);
  }
}

TEST_F(ServePipelineTest, ServerStreamsBitExactDetections) {
  const auto uds = scratch_uds("stream");
  Server server(pipeline_, test_config(uds));
  server.start();
  {
    auto client = Client::connect_unix(uds);
    const auto ack = client.hello({1, 0, 8});
    EXPECT_GT(ack.session_id, 0u);
    EXPECT_EQ(ack.decode_threads, 2u);

    std::vector<EpochRequest> reqs;
    for (std::uint64_t node = 0; node < 8; ++node) {
      reqs.push_back(make_request(node % 3 == 2 ? 0 : 75, node));
    }
    for (const auto& r : reqs) {
      client.send_data(r.header, r.y.data(), r.y.size());
    }
    for (std::size_t got = 0; got < reqs.size(); ++got) {
      const auto resp = client.recv();
      ASSERT_TRUE(resp.has_value());
      ASSERT_EQ(resp->type, FrameType::kDetection);
      ASSERT_TRUE(resp->detection.has_value());
      const auto& det = *resp->detection;
      const auto& req = reqs[det.node_id];
      const auto oracle = pipeline_->decode(req);
      EXPECT_EQ(std::memcmp(&det.score, &oracle.score, sizeof(double)), 0);
      EXPECT_EQ(det.detected != 0, oracle.detected);
      EXPECT_EQ(det.n_samples, oracle.n_samples);
      EXPECT_EQ(det.epoch_index, req.header.epoch_index);
    }
    const auto bye = client.bye();
    EXPECT_EQ(bye.frames_accepted, reqs.size());
    EXPECT_EQ(bye.detections_sent, reqs.size());
    EXPECT_EQ(bye.frames_rejected, 0u);
  }
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.detections_out, 8u);
  EXPECT_EQ(stats.frames_rejected, 0u);
  EXPECT_EQ(stats.queued_bytes, 0u);
  EXPECT_EQ(stats.sessions_open, 0u);
}

TEST_F(ServePipelineTest, FullQueueRejectsRetryablyAndRecovers) {
  const auto uds = scratch_uds("busy");
  auto config = test_config(uds);
  config.decode_threads = 1;
  config.queue_capacity = 1;
  config.decode_delay_ms = 40;
  Server server(pipeline_, config);
  server.start();

  auto client = Client::connect_unix(uds);
  client.hello({1, 0, 4});
  const auto req = make_request(0, 1);
  const std::size_t burst = 6;
  for (std::size_t i = 0; i < burst; ++i) {
    client.send_data(req.header, req.y.data(), req.y.size());
  }
  std::size_t detections = 0, busy = 0;
  for (std::size_t i = 0; i < burst; ++i) {
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    if (resp->type == FrameType::kDetection) {
      ++detections;
    } else {
      ASSERT_EQ(resp->type, FrameType::kError);
      EXPECT_EQ(resp->status, Status::kRetryBusy);
      EXPECT_TRUE(status_retryable(resp->status));
      ++busy;
    }
  }
  EXPECT_EQ(detections + busy, burst);
  EXPECT_GE(detections, 1u);
  EXPECT_GE(busy, 1u) << "a 1-deep queue must push back on a burst of 6";

  // The rejection is retryable: the same frame goes through afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.send_data(req.header, req.y.data(), req.y.size());
  const auto retry = client.recv();
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->type, FrameType::kDetection);
  client.bye();
  server.stop();
  EXPECT_EQ(server.stats().queued_bytes, 0u);
}

TEST_F(ServePipelineTest, BudgetExhaustionRejectsWithoutLeaking) {
  const auto uds = scratch_uds("budget");
  auto config = test_config(uds);
  config.decode_threads = 1;
  config.decode_delay_ms = 40;
  // Big enough for exactly one in-flight raw frame.
  const auto req = make_request(0, 1);
  config.session_budget_bytes = kHeaderBytes + 48 + req.y.size() * 8 + 64;
  Server server(pipeline_, config);
  server.start();

  auto client = Client::connect_unix(uds);
  client.hello({1, 0, 2});
  client.send_data(req.header, req.y.data(), req.y.size());
  client.send_data(req.header, req.y.data(), req.y.size());
  std::size_t detections = 0, budget_rejects = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    if (resp->type == FrameType::kDetection) {
      ++detections;
    } else {
      EXPECT_EQ(resp->status, Status::kRetryBudget);
      ++budget_rejects;
    }
  }
  EXPECT_EQ(detections, 1u);
  EXPECT_EQ(budget_rejects, 1u);
  client.bye();
  server.stop();
  EXPECT_EQ(server.stats().queued_bytes, 0u) << "budget leaked";
}

TEST_F(ServePipelineTest, DataBeforeHelloIsRejectedAndClosed) {
  const auto uds = scratch_uds("nohello");
  Server server(pipeline_, test_config(uds));
  server.start();
  auto client = Client::connect_unix(uds);
  const auto req = make_request(0, 1);
  client.send_data(req.header, req.y.data(), req.y.size());
  const auto resp = client.recv();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, FrameType::kError);
  EXPECT_EQ(resp->status, Status::kNotHello);
  EXPECT_FALSE(client.recv().has_value()) << "server should close the session";
  server.stop();
}

TEST_F(ServePipelineTest, MalformedIngressGetsTypedErrorThenClose) {
  const auto uds = scratch_uds("malformed");
  Server server(pipeline_, test_config(uds));
  server.start();

  {  // Bad magic.
    auto client = Client::connect_unix(uds);
    client.hello({1, 0, 1});
    auto frame = encode_frame(FrameType::kData, Status::kOk, "");
    frame[4] = char(frame[4] ^ 0xFF);
    client.send_raw(frame);
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, Status::kBadMagic);
    EXPECT_FALSE(client.recv().has_value());
  }
  {  // Corrupted body -> bad crc.
    auto client = Client::connect_unix(uds);
    client.hello({1, 0, 1});
    const auto req = make_request(75, 3);
    auto frame = encode_frame(FrameType::kData, Status::kOk,
                              encode_data(req.header, req.y.data(),
                                          req.y.size()));
    frame.back() = char(frame.back() ^ 0x01);
    client.send_raw(frame);
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, Status::kBadCrc);
    EXPECT_FALSE(client.recv().has_value());
  }
  {  // Oversize length prefix: rejected before any allocation.
    auto client = Client::connect_unix(uds);
    client.hello({1, 0, 1});
    const std::uint32_t huge = 0x40000000;
    std::string prefix(reinterpret_cast<const char*>(&huge), 4);
    client.send_raw(prefix);
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, Status::kOversize);
    EXPECT_FALSE(client.recv().has_value());
  }
  {  // Unknown scenario id: typed semantic rejection, session survives.
    auto client = Client::connect_unix(uds);
    client.hello({1, 0, 1});
    auto req = make_request(75, 4);
    req.header.scenario_id = 7;
    client.send_data(req.header, req.y.data(), req.y.size());
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, Status::kUnknownScenario);
    req.header.scenario_id = 0;
    client.send_data(req.header, req.y.data(), req.y.size());
    const auto ok = client.recv();
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->type, FrameType::kDetection);
    client.bye();
  }
  {  // Oversize M: typed rejection.
    auto client = Client::connect_unix(uds);
    client.hello({1, 0, 1});
    auto req = make_request(75, 5);
    req.header.m = std::uint32_t(ctx_->base.cs_n_phi) * 2;
    client.send_data(req.header, req.y.data(), req.y.size());
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, Status::kBadM);
    client.bye();
  }
  server.stop();
  EXPECT_EQ(server.stats().queued_bytes, 0u);
}

TEST_F(ServePipelineTest, MidSessionDisconnectReleasesBudget) {
  const auto uds = scratch_uds("vanish");
  auto config = test_config(uds);
  config.decode_threads = 1;
  config.decode_delay_ms = 30;
  Server server(pipeline_, config);
  server.start();
  {
    auto client = Client::connect_unix(uds);
    client.hello({1, 0, 4});
    const auto req = make_request(0, 1);
    for (int i = 0; i < 3; ++i) {
      client.send_data(req.header, req.y.data(), req.y.size());
    }
    // Vanish with everything in flight.
  }
  // A fresh session must still be served and the budget fully recovered.
  auto client = Client::connect_unix(uds);
  client.hello({2, 0, 1});
  const auto req = make_request(0, 9);
  client.send_data(req.header, req.y.data(), req.y.size());
  const auto resp = client.recv();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, FrameType::kDetection);
  client.bye();
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.queued_bytes, 0u) << "disconnect leaked budget";
  EXPECT_EQ(stats.sessions_open, 0u);
}

TEST_F(ServePipelineTest, DrainFinishesInFlightAndRejectsNewWork) {
  const auto uds = scratch_uds("drain");
  auto config = test_config(uds);
  config.decode_threads = 1;
  config.decode_delay_ms = 50;
  config.status_path =
      (std::filesystem::temp_directory_path() /
       ("effi_serve_drain_" + std::to_string(::getpid()) + ".status.json"))
          .string();
  Server server(pipeline_, config);
  server.start();

  auto client = Client::connect_unix(uds);
  client.hello({1, 0, 2});
  const auto req = make_request(0, 1);
  client.send_data(req.header, req.y.data(), req.y.size());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  server.begin_drain();
  // New work during the drain earns the retryable kDraining (admission is
  // checked before decode, so this lands even while the worker sleeps).
  client.send_data(req.header, req.y.data(), req.y.size());

  std::size_t detections = 0, draining = 0;
  for (int i = 0; i < 2; ++i) {
    const auto resp = client.recv();
    if (!resp) break;
    if (resp->type == FrameType::kDetection) {
      ++detections;
    } else if (resp->status == Status::kDraining) {
      ++draining;
    }
  }
  EXPECT_EQ(detections, 1u) << "in-flight work must finish during drain";
  EXPECT_EQ(draining, 1u);

  server.stop();
  const auto status = read_serve_status(config.status_path);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->complete);
  EXPECT_TRUE(status->draining);
  EXPECT_EQ(status->detections_out, 1u);
  EXPECT_TRUE(
      std::filesystem::exists(prometheus_path_for(config.status_path)));
  std::filesystem::remove(config.status_path);
  std::filesystem::remove(prometheus_path_for(config.status_path));
}

TEST_F(ServePipelineTest, ManySessionsConcurrently) {
  const auto uds = scratch_uds("many");
  auto config = test_config(uds);
  config.decode_threads = 4;
  Server server(pipeline_, config);
  server.start();

  const std::size_t kSessions = 6, kPerSession = 4;
  std::atomic<std::size_t> ok{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kSessions; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::connect_unix(uds);
      client.hello({std::uint32_t(t), 0, kPerSession});
      for (std::size_t i = 0; i < kPerSession; ++i) {
        const auto req = make_request(i % 2 ? 0 : 75, t * 100 + i);
        client.send_data(req.header, req.y.data(), req.y.size());
      }
      for (std::size_t i = 0; i < kPerSession; ++i) {
        const auto resp = client.recv();
        if (resp && resp->type == FrameType::kDetection) ok.fetch_add(1);
      }
      const auto bye = client.bye();
      EXPECT_EQ(bye.detections_sent, kPerSession);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kSessions * kPerSession);
  server.stop();
  EXPECT_EQ(server.stats().sessions_opened, kSessions);
  EXPECT_EQ(server.stats().queued_bytes, 0u);
}

}  // namespace
