// Reconstruction algorithms: OMP exact/noisy recovery, IHT/ISTA baselines,
// and the frame-wise Reconstructor facade with charge-sharing compensation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "cs/basis.hpp"
#include "cs/effective.hpp"
#include "cs/iterative.hpp"
#include "cs/omp.hpp"
#include "cs/reconstructor.hpp"
#include "dsp/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;

namespace {

linalg::Matrix gaussian_dict(std::size_t m, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix d(m, k);
  for (auto& v : d.data()) v = rng.gaussian() / std::sqrt(static_cast<double>(m));
  return d;
}

linalg::Vector sparse_vector(std::size_t k, std::size_t nnz,
                             std::uint64_t seed) {
  Rng rng(seed);
  linalg::Vector x(k, 0.0);
  std::size_t placed = 0;
  while (placed < nnz) {
    const auto idx = static_cast<std::size_t>(rng.below(k));
    if (x[idx] != 0.0) continue;
    x[idx] = rng.gaussian() + (rng.chance(0.5) ? 2.0 : -2.0);
    ++placed;
  }
  return x;
}

double rel_err(const linalg::Vector& a, const linalg::Vector& b) {
  return linalg::norm2(linalg::vsub(a, b)) / linalg::norm2(b);
}

/// A band-limited test frame: a few low-frequency DCT atoms.
linalg::Vector bandlimited_frame(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Vector coeffs(n, 0.0);
  for (std::size_t k = 1; k < 20 && k < n; ++k) {
    coeffs[k] = rng.gaussian() / (1.0 + 0.3 * static_cast<double>(k));
  }
  return cs::dct_inverse(coeffs);
}

}  // namespace

class OmpRecovery : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(OmpRecovery, ExactOnNoiselessSparseProblems) {
  const auto [m, k, nnz] = GetParam();
  const auto dict = gaussian_dict(m, k, 100 + m);
  const auto x0 = sparse_vector(k, nnz, 200 + nnz);
  const auto y = linalg::matvec(dict, x0);
  const auto r = cs::omp_solve(dict, y, {.max_atoms = static_cast<std::size_t>(2 * nnz),
                                         .residual_tol = 1e-10});
  EXPECT_LT(rel_err(r.coefficients, x0), 1e-8);
  EXPECT_LE(r.support.size(), static_cast<std::size_t>(2 * nnz));
}

INSTANTIATE_TEST_SUITE_P(Problems, OmpRecovery,
                         ::testing::Values(std::tuple{40, 120, 5},
                                           std::tuple{64, 256, 8},
                                           std::tuple{30, 60, 4},
                                           std::tuple{96, 384, 12}));

TEST(Omp, StopsAtResidualTolerance) {
  const auto dict = gaussian_dict(50, 200, 3);
  const auto x0 = sparse_vector(200, 6, 4);
  auto y = linalg::matvec(dict, x0);
  Rng rng(5);
  for (auto& v : y) v += rng.gaussian(0.0, 0.01);
  const auto r = cs::omp_solve(dict, y, {.max_atoms = 25, .residual_tol = 0.1});
  EXPECT_LT(r.iterations, 25u);  // tolerance reached before the cap
  EXPECT_LE(r.residual_norm, 0.1 * linalg::norm2(y) + 1e-12);
}

TEST(Omp, ZeroMeasurementGivesZero) {
  const auto dict = gaussian_dict(20, 50, 7);
  const auto r = cs::omp_solve(dict, linalg::Vector(20, 0.0));
  for (double v : r.coefficients) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(Omp, HandlesDuplicateAtomsGracefully) {
  // Two identical atoms: OMP must not crash on the singular Gram update.
  linalg::Matrix dict(10, 3);
  Rng rng(11);
  for (std::size_t i = 0; i < 10; ++i) {
    const double v = rng.gaussian();
    dict(i, 0) = v;
    dict(i, 1) = v;  // duplicate
    dict(i, 2) = rng.gaussian();
  }
  const auto y = dict.column(0);
  const auto r = cs::omp_solve(dict, y, {.max_atoms = 3, .residual_tol = 1e-12});
  EXPECT_LT(r.residual_norm, 1e-10);
}

TEST(Omp, WrongSizeThrows) {
  const auto dict = gaussian_dict(20, 50, 7);
  EXPECT_THROW(cs::omp_solve(dict, linalg::Vector(19, 0.0)), Error);
}

TEST(Iht, RecoversSparseVector) {
  const auto dict = gaussian_dict(60, 150, 21);
  const auto x0 = sparse_vector(150, 5, 22);
  const auto y = linalg::matvec(dict, x0);
  const auto x = cs::iht_solve(dict, y, {.sparsity = 5, .max_iters = 500});
  EXPECT_LT(rel_err(x, x0), 0.05);
}

TEST(Ista, ShrinksTowardSparseSolution) {
  const auto dict = gaussian_dict(60, 150, 31);
  const auto x0 = sparse_vector(150, 5, 32);
  const auto y = linalg::matvec(dict, x0);
  const auto x = cs::ista_solve(dict, y, {.max_iters = 800});
  // ISTA is biased; just require substantial recovery.
  EXPECT_LT(rel_err(x, x0), 0.5);
  std::size_t nnz = 0;
  for (double v : x) {
    if (v != 0.0) ++nnz;
  }
  EXPECT_LT(nnz, 100u);  // sparsity-inducing
}

TEST(Iterative, ShapeChecks) {
  const auto dict = gaussian_dict(10, 20, 41);
  EXPECT_THROW(cs::iht_solve(dict, linalg::Vector(9, 0.0)), Error);
  EXPECT_THROW(cs::ista_solve(dict, linalg::Vector(9, 0.0)), Error);
}

// --- Reconstructor facade ----------------------------------------------------

TEST(Reconstructor, RecoversBandlimitedFrameFromIdealMeasurements) {
  const std::size_t n = 384, m = 96;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 77);
  const auto x = bandlimited_frame(n, 5);
  const auto y = phi.apply(x);
  cs::ReconstructorConfig cfg;
  cfg.compensate_decay = false;
  const cs::Reconstructor rec(phi, {1.0, 0.0}, cfg);
  const auto xr = rec.reconstruct_frame(y);
  EXPECT_GT(dsp::snr_vs_reference_db(x, xr), 20.0);
}

TEST(Reconstructor, CompensatesChargeSharingDecay) {
  const std::size_t n = 384, m = 96;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 78);
  const auto gains = cs::charge_sharing_gains(0.125e-12, 0.5e-12);
  const auto eff = cs::effective_matrix(phi, gains.a, gains.b);
  const auto x = bandlimited_frame(n, 6);
  const auto y = linalg::matvec(eff, x);

  cs::ReconstructorConfig with;  // compensate_decay = true
  const cs::Reconstructor rec_comp(phi, gains, with);
  cs::ReconstructorConfig without = with;
  without.compensate_decay = false;
  const cs::Reconstructor rec_naive(phi, gains, without);

  const double snr_comp = dsp::snr_vs_reference_db(x, rec_comp.reconstruct_frame(y));
  const double snr_naive = dsp::snr_vs_reference_db(x, rec_naive.reconstruct_frame(y));
  EXPECT_GT(snr_comp, 15.0);
  EXPECT_GT(snr_comp, snr_naive + 6.0);  // compensation matters a lot
}

TEST(Reconstructor, AutoTruncationUsesLowBand) {
  const auto phi = cs::SparseBinaryMatrix::generate(100, 384, 2, 79);
  const cs::Reconstructor rec(phi, {1.0, 0.0});
  EXPECT_EQ(rec.active_atoms(), 85u);  // 0.85 * M
  cs::ReconstructorConfig full;
  full.basis_atoms = 384;
  const cs::Reconstructor rec_full(phi, {1.0, 0.0}, full);
  EXPECT_EQ(rec_full.active_atoms(), 384u);
}

TEST(Reconstructor, StreamProcessesWholeFrames) {
  const std::size_t n = 64, m = 16;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 80);
  cs::ReconstructorConfig cfg;
  cfg.compensate_decay = false;
  const cs::Reconstructor rec(phi, {1.0, 0.0}, cfg);
  // 2 full frames + 5 stray measurements -> 2*64 output samples.
  std::vector<double> meas(2 * m + 5, 0.1);
  const auto out = rec.reconstruct_stream(meas);
  EXPECT_EQ(out.size(), 2 * n);
}

TEST(Reconstructor, FrameSizeMismatchThrows) {
  const auto phi = cs::SparseBinaryMatrix::generate(16, 64, 2, 81);
  const cs::Reconstructor rec(phi, {1.0, 0.0});
  EXPECT_THROW(rec.reconstruct_frame(linalg::Vector(15, 0.0)), Error);
}

class ReconAlgos : public ::testing::TestWithParam<cs::ReconAlgorithm> {};

TEST_P(ReconAlgos, AllAlgorithmsRecoverSomething) {
  const std::size_t n = 256, m = 128;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 90);
  const auto x = bandlimited_frame(n, 9);
  const auto y = phi.apply(x);
  cs::ReconstructorConfig cfg;
  cfg.algorithm = GetParam();
  cfg.compensate_decay = false;
  cfg.max_iters = 300;
  const cs::Reconstructor rec(phi, {1.0, 0.0}, cfg);
  const auto xr = rec.reconstruct_frame(y);
  EXPECT_GT(dsp::snr_vs_reference_db(x, xr), 5.0)
      << "algorithm " << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ReconAlgos,
                         ::testing::Values(cs::ReconAlgorithm::Omp,
                                           cs::ReconAlgorithm::Iht,
                                           cs::ReconAlgorithm::Ista));

// ---------------------------------------------------------------------------
// Batch-OMP vs naive-OMP equivalence: the Gram-based fast path must select
// the same atoms and produce the same coefficients/residual as the
// residual-recorrelation reference oracle.

#include "util/thread_pool.hpp"

TEST(OmpBatch, MatchesNaiveOn50RandomProblems) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = 20 + static_cast<std::size_t>(rng.below(80));
    const auto k = m + 10 + static_cast<std::size_t>(rng.below(3 * m));
    const auto nnz = 2 + static_cast<std::size_t>(rng.below(m / 5 + 1));
    const auto dict = gaussian_dict(m, k, 1000 + static_cast<std::uint64_t>(trial));
    const auto x0 = sparse_vector(k, nnz, 2000 + static_cast<std::uint64_t>(trial));
    auto y = linalg::matvec(dict, x0);
    if (trial % 2 == 1) {  // half the problems get measurement noise
      for (auto& v : y) v += 0.02 * rng.gaussian();
    }
    cs::OmpOptions opts;
    opts.max_atoms = 2 * nnz;
    opts.residual_tol = (trial % 3 == 0) ? 1e-10 : 0.05;

    opts.mode = cs::OmpMode::Naive;
    const auto naive = cs::omp_solve(dict, y, opts);
    opts.mode = cs::OmpMode::Batch;
    const auto batch = cs::omp_solve(dict, y, opts);

    ASSERT_EQ(batch.support, naive.support) << "trial " << trial;
    EXPECT_EQ(batch.iterations, naive.iterations) << "trial " << trial;
    const double scale = 1.0 + linalg::norm2(naive.coefficients);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(batch.coefficients[i], naive.coefficients[i], 1e-9 * scale)
          << "trial " << trial << " atom " << i;
    }
    EXPECT_NEAR(batch.residual_norm, naive.residual_norm,
                1e-9 * (1.0 + naive.residual_norm))
        << "trial " << trial;
  }
}

TEST(OmpBatch, GramIsOnlyBuiltInBatchMode) {
  const auto dict = gaussian_dict(30, 90, 77);
  const cs::OmpSolver batch(dict, {.mode = cs::OmpMode::Batch});
  const cs::OmpSolver naive(dict, {.mode = cs::OmpMode::Naive});
  EXPECT_EQ(batch.gram_matrix().rows(), 90u);
  EXPECT_EQ(batch.gram_matrix().cols(), 90u);
  EXPECT_EQ(naive.gram_matrix().rows(), 0u);
}

TEST(Reconstructor, BatchMatchesNaiveOnChargeSharingFrames) {
  const std::size_t n = 384, m = 100;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 55);
  const auto gains = cs::charge_sharing_gains(0.125e-12, 0.5e-12);
  cs::ReconstructorConfig cfg;
  cfg.residual_tol = 0.02;
  cfg.omp_mode = cs::OmpMode::Batch;
  const cs::Reconstructor rec_batch(phi, gains, cfg);
  cfg.omp_mode = cs::OmpMode::Naive;
  const cs::Reconstructor rec_naive(phi, gains, cfg);
  const auto w = cs::effective_entry_weights(phi, gains.a, gains.b);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto x = bandlimited_frame(n, 60 + seed);
    const auto y = phi.csr().apply(x, w);
    const auto xb = rec_batch.reconstruct_frame(y);
    const auto xn = rec_naive.reconstruct_frame(y);
    double scale = 1.0;
    for (double v : xn) scale = std::max(scale, std::fabs(v));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(xb[i], xn[i], 1e-9 * scale) << "frame " << seed;
    }
  }
}

TEST(Reconstructor, StreamWithThreadPoolIsBitwiseSerial) {
  const std::size_t n = 128, m = 64, frames = 6;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 71);
  const auto gains = cs::charge_sharing_gains(0.125e-12, 0.5e-12);
  cs::ReconstructorConfig cfg;
  cfg.residual_tol = 0.02;
  const cs::Reconstructor rec(phi, gains, cfg);
  const auto w = cs::effective_entry_weights(phi, gains.a, gains.b);
  linalg::Vector stream;
  for (std::uint64_t f = 0; f < frames; ++f) {
    const auto y = phi.csr().apply(bandlimited_frame(n, 80 + f), w);
    stream.insert(stream.end(), y.begin(), y.end());
  }
  const auto serial = rec.reconstruct_stream(stream);
  ThreadPool pool(2);
  const auto pooled = rec.reconstruct_stream(stream, &pool);
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(pooled[i], serial[i]);
  }
}

TEST(OmpBatch, SolveMultiMatchesPerLaneSolves) {
  // The multi-RHS entry point of the batched Monte-Carlo engine: K lanes
  // solved against one shared Gram must be bit-identical to K independent
  // solve() calls, in both modes.
  Rng rng(9119);
  const auto dict = gaussian_dict(40, 140, 3131);
  for (const auto mode : {cs::OmpMode::Batch, cs::OmpMode::Naive}) {
    const cs::OmpSolver solver(dict, {.max_atoms = 12,
                                      .residual_tol = 0.02,
                                      .mode = mode});
    std::vector<linalg::Vector> ys;
    for (int lane = 0; lane < 6; ++lane) {
      auto y = linalg::matvec(dict, sparse_vector(140, 5, 500 + lane));
      for (auto& v : y) v += 0.02 * rng.gaussian();
      ys.push_back(std::move(y));
    }
    ys.push_back(linalg::Vector(40, 0.0));  // zero lane: early-return path

    const auto multi = solver.solve_multi(ys);
    ASSERT_EQ(multi.size(), ys.size());
    for (std::size_t l = 0; l < ys.size(); ++l) {
      const auto single = solver.solve(ys[l]);
      EXPECT_EQ(multi[l].support, single.support) << "lane " << l;
      EXPECT_EQ(multi[l].iterations, single.iterations) << "lane " << l;
      ASSERT_EQ(multi[l].coefficients.size(), single.coefficients.size());
      for (std::size_t i = 0; i < single.coefficients.size(); ++i) {
        EXPECT_EQ(multi[l].coefficients[i], single.coefficients[i])
            << "lane " << l << " atom " << i;
      }
      EXPECT_EQ(multi[l].residual_norm, single.residual_norm) << "lane " << l;
    }
  }
}

TEST(OmpBatch, SolveMultiValidatesShapes) {
  const auto dict = gaussian_dict(30, 90, 77);
  const cs::OmpSolver solver(dict, {.mode = cs::OmpMode::Batch});
  EXPECT_TRUE(solver.solve_multi({}).empty());
  EXPECT_THROW(solver.solve_multi({linalg::Vector(29, 0.0)}), Error);
}

TEST(Reconstructor, StreamMultiMatchesPerLaneStreams) {
  const std::size_t n = 128, m = 64, frames = 4, lanes = 3;
  const auto phi = cs::SparseBinaryMatrix::generate(m, n, 2, 71);
  const auto gains = cs::charge_sharing_gains(0.125e-12, 0.5e-12);
  cs::ReconstructorConfig cfg;
  cfg.residual_tol = 0.02;
  const cs::Reconstructor rec(phi, gains, cfg);
  const auto w = cs::effective_entry_weights(phi, gains.a, gains.b);

  std::vector<linalg::Vector> streams(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::uint64_t f = 0; f < frames; ++f) {
      const auto y = phi.csr().apply(bandlimited_frame(n, 10 * l + f), w);
      streams[l].insert(streams[l].end(), y.begin(), y.end());
    }
  }
  std::vector<const double*> rows;
  for (const auto& s : streams) rows.push_back(s.data());

  const auto multi = rec.reconstruct_stream_multi(rows, streams[0].size());
  ASSERT_EQ(multi.size(), lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto single = rec.reconstruct_stream(streams[l]);
    ASSERT_EQ(multi[l].size(), single.size()) << "lane " << l;
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(multi[l][i], single[i]) << "lane " << l;
    }
  }

  // And bit-identical again when frames fan out over a pool.
  ThreadPool pool(2);
  const auto pooled = rec.reconstruct_stream_multi(rows, streams[0].size(),
                                                   &pool);
  for (std::size_t l = 0; l < lanes; ++l) {
    ASSERT_EQ(pooled[l].size(), multi[l].size());
    for (std::size_t i = 0; i < multi[l].size(); ++i) {
      EXPECT_EQ(pooled[l][i], multi[l][i]);
    }
  }
}
