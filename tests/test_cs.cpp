// Compressive-sensing substrate: s-SRBM matrices, DCT/Haar bases and the
// charge-sharing effective-matrix construction (paper Eq. 1).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "cs/basis.hpp"
#include "cs/effective.hpp"
#include "cs/srbm.hpp"
#include "linalg/decompositions.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;
using cs::SparseBinaryMatrix;

class SrbmProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SrbmProperty, ExactlySOnesPerColumn) {
  const auto [m, n, s] = GetParam();
  const auto phi = SparseBinaryMatrix::generate(m, n, s, 123);
  EXPECT_EQ(phi.rows(), static_cast<std::size_t>(m));
  EXPECT_EQ(phi.cols(), static_cast<std::size_t>(n));
  for (std::size_t j = 0; j < phi.cols(); ++j) {
    const auto& sup = phi.column_support(j);
    EXPECT_EQ(sup.size(), static_cast<std::size_t>(s));
    // Strictly increasing => distinct rows.
    for (std::size_t i = 1; i < sup.size(); ++i) EXPECT_LT(sup[i - 1], sup[i]);
    for (std::size_t r : sup) EXPECT_LT(r, phi.rows());
  }
}

TEST_P(SrbmProperty, RowLoadIsBalanced) {
  const auto [m, n, s] = GetParam();
  const auto phi = SparseBinaryMatrix::generate(m, n, s, 321);
  const double mean_weight = static_cast<double>(n * s) / m;
  std::size_t total = 0;
  for (std::size_t i = 0; i < phi.rows(); ++i) {
    total += phi.row_weight(i);
    EXPECT_LE(phi.row_weight(i), static_cast<std::size_t>(3.0 * mean_weight + 4));
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n * s));
}

TEST_P(SrbmProperty, ApplyMatchesDenseMatvec) {
  const auto [m, n, s] = GetParam();
  const auto phi = SparseBinaryMatrix::generate(m, n, s, 55);
  Rng rng(5);
  linalg::Vector x(n);
  for (auto& v : x) v = rng.gaussian();
  const auto fast = phi.apply(x);
  const auto dense = linalg::matvec(phi.to_dense(), x);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], dense[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SrbmProperty,
                         ::testing::Values(std::tuple{75, 384, 2},
                                           std::tuple{150, 384, 2},
                                           std::tuple{192, 384, 4},
                                           std::tuple{32, 64, 1},
                                           std::tuple{16, 16, 8}));

TEST(Srbm, DeterministicPerSeed) {
  const auto a = SparseBinaryMatrix::generate(40, 100, 2, 9);
  const auto b = SparseBinaryMatrix::generate(40, 100, 2, 9);
  const auto c = SparseBinaryMatrix::generate(40, 100, 2, 10);
  bool same_ab = true, same_ac = true;
  for (std::size_t j = 0; j < 100; ++j) {
    if (a.column_support(j) != b.column_support(j)) same_ab = false;
    if (a.column_support(j) != c.column_support(j)) same_ac = false;
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(Srbm, RejectsBadArguments) {
  EXPECT_THROW(SparseBinaryMatrix::generate(0, 10, 1, 1), Error);
  EXPECT_THROW(SparseBinaryMatrix::generate(10, 10, 0, 1), Error);
  EXPECT_THROW(SparseBinaryMatrix::generate(10, 10, 11, 1), Error);
}

TEST(Basis, DctIsOrthonormal) {
  const auto psi = cs::dct_synthesis_matrix(32);
  const auto gram = linalg::matmul(psi.transposed(), psi);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Basis, ForwardInverseRoundTrip) {
  Rng rng(8);
  linalg::Vector x(50);
  for (auto& v : x) v = rng.gaussian();
  const auto back = cs::dct_inverse(cs::dct_forward(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-10);
}

TEST(Basis, ForwardMatchesMatrixForm) {
  Rng rng(9);
  linalg::Vector x(24);
  for (auto& v : x) v = rng.gaussian();
  const auto psi = cs::dct_synthesis_matrix(24);
  const auto c1 = cs::dct_forward(x);
  const auto c2 = linalg::matvec_transposed(psi, x);  // Psi^T x
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-10);
}

TEST(Basis, CosineIsSparseInDct) {
  const std::size_t n = 128;
  linalg::Vector x(n);
  for (std::size_t t = 0; t < n; ++t) {
    // DCT-II basis function k=10 exactly.
    x[t] = std::cos(std::numbers::pi * (t + 0.5) * 10.0 / n);
  }
  const auto c = cs::dct_forward(x);
  EXPECT_GT(cs::energy_in_top_k(c, 1), 0.999999);
}

TEST(Basis, HaarOrthonormalAndLocal) {
  const auto h = cs::haar_synthesis_matrix(16);
  const auto gram = linalg::matmul(h.transposed(), h);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
  EXPECT_THROW(cs::haar_synthesis_matrix(12), Error);
}

TEST(Basis, EnergyInTopKEdgeCases) {
  EXPECT_DOUBLE_EQ(cs::energy_in_top_k({0.0, 0.0}, 1), 1.0);  // zero signal
  EXPECT_DOUBLE_EQ(cs::energy_in_top_k({3.0, 4.0}, 2), 1.0);
  EXPECT_NEAR(cs::energy_in_top_k({3.0, 4.0}, 1), 16.0 / 25.0, 1e-12);
  EXPECT_THROW(cs::energy_in_top_k({}, 1), Error);
}

TEST(ChargeSharing, GainsFromCapacitors) {
  const auto g = cs::charge_sharing_gains(1e-12, 3e-12);
  EXPECT_DOUBLE_EQ(g.a, 0.25);
  EXPECT_DOUBLE_EQ(g.b, 0.75);
  EXPECT_NEAR(g.a + g.b, 1.0, 1e-15);
  EXPECT_THROW(cs::charge_sharing_gains(0.0, 1e-12), Error);
}

TEST(EffectiveMatrix, MatchesEq1OnHandExample) {
  // 1 row, 3 columns, all ones: V = a*x3 + a*b*x2 + a*b^2*x1 (Eq. 1).
  SparseBinaryMatrix phi = SparseBinaryMatrix::generate(1, 3, 1, 1);
  const double a = 0.2, b = 0.8;
  const auto w = cs::effective_matrix(phi, a, b);
  EXPECT_NEAR(w(0, 2), a, 1e-15);
  EXPECT_NEAR(w(0, 1), a * b, 1e-15);
  EXPECT_NEAR(w(0, 0), a * b * b, 1e-15);
}

TEST(EffectiveMatrix, SupportMatchesPhi) {
  const auto phi = SparseBinaryMatrix::generate(20, 60, 2, 3);
  const auto w = cs::effective_matrix(phi, 0.3, 0.7);
  const auto dense = phi.to_dense();
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 60; ++j) {
      if (dense(i, j) == 0.0) {
        EXPECT_DOUBLE_EQ(w(i, j), 0.0);
      } else {
        EXPECT_GT(w(i, j), 0.0);
      }
    }
  }
}

TEST(EffectiveMatrix, LaterSamplesWeighMore) {
  const auto phi = SparseBinaryMatrix::generate(10, 100, 2, 7);
  const auto w = cs::effective_matrix(phi, 0.25, 0.75);
  // Within each row, weights must increase with the column index (newer
  // samples decay through fewer subsequent shares).
  for (std::size_t i = 0; i < 10; ++i) {
    double prev = -1.0;
    for (std::size_t j = 0; j < 100; ++j) {
      if (w(i, j) == 0.0) continue;
      EXPECT_GT(w(i, j), prev);
      prev = w(i, j);
    }
    // The newest sample of each row always carries weight exactly `a`.
    EXPECT_NEAR(prev, 0.25, 1e-15);
  }
}

TEST(EffectiveMatrix, IdealMatrixIsBinary) {
  const auto phi = SparseBinaryMatrix::generate(10, 30, 2, 4);
  const auto ideal = cs::ideal_matrix(phi);
  for (double v : ideal.data()) EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(EffectiveMatrix, RejectsBadGains) {
  const auto phi = SparseBinaryMatrix::generate(4, 8, 1, 2);
  EXPECT_THROW(cs::effective_matrix(phi, 0.0, 0.5), Error);
  EXPECT_THROW(cs::effective_matrix(phi, 0.5, 1.5), Error);
}

TEST(Basis, Db4IsOrthonormal) {
  for (std::size_t n : {16u, 32u, 48u}) {
    const auto psi = cs::db4_synthesis_matrix(n);
    const auto gram = linalg::matmul(psi.transposed(), psi);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-10) << "n=" << n;
      }
    }
  }
}

TEST(Basis, Db4PerfectReconstruction) {
  const std::size_t n = 384;  // the paper's frame length
  const auto psi = cs::db4_synthesis_matrix(n);
  Rng rng(17);
  linalg::Vector x(n);
  for (auto& v : x) v = rng.gaussian();
  // coeffs = Psi^T x; x_hat = Psi coeffs.
  const auto coeffs = linalg::matvec_transposed(psi, x);
  const auto back = linalg::matvec(psi, coeffs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-10);
}

TEST(Basis, Db4CompressesSmoothSignals) {
  // A slow sine concentrates in the coarse (leading) atoms.
  const std::size_t n = 384;
  const auto psi = cs::db4_synthesis_matrix(n);
  linalg::Vector x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * std::numbers::pi * 3.0 * static_cast<double>(t) /
                    static_cast<double>(n));
  }
  const auto coeffs = linalg::matvec_transposed(psi, x);
  EXPECT_GT(cs::energy_in_top_k(coeffs, 40), 0.99);
  // ... and the energy sits in the leading (coarse) third.
  double head = 0.0, total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += coeffs[i] * coeffs[i];
    if (i < n / 3) head += coeffs[i] * coeffs[i];
  }
  EXPECT_GT(head / total, 0.95);
}

TEST(Basis, Db4RejectsBadLengths) {
  EXPECT_THROW(cs::db4_synthesis_matrix(6), Error);
  EXPECT_THROW(cs::db4_synthesis_matrix(15), Error);
  EXPECT_THROW(cs::db4_synthesis_matrix(16, 3), Error);  // 16/8 = 2 < 4
}
