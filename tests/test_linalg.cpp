// Unit and property tests for the dense linear-algebra substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompositions.hpp"
#include "linalg/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;
using linalg::Matrix;
using linalg::Vector;

namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (auto& v : m.data()) v = rng.gaussian();
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.gaussian();
  return v;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, IdentityAndMatmul) {
  const auto a = random_matrix(5, 5, 1);
  const auto i = Matrix::identity(5);
  EXPECT_LT(max_abs_diff(linalg::matmul(a, i), a), 1e-14);
  EXPECT_LT(max_abs_diff(linalg::matmul(i, a), a), 1e-14);
}

TEST(Matrix, FromRowsAndRagged) {
  const auto m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), Error);
}

TEST(Matrix, TransposeInvolution) {
  const auto a = random_matrix(4, 7, 2);
  EXPECT_LT(max_abs_diff(a.transposed().transposed(), a), 1e-15);
}

TEST(Matrix, MatmulAgainstHandComputed) {
  const auto a = Matrix::from_rows({{1, 2}, {3, 4}});
  const auto b = Matrix::from_rows({{5, 6}, {7, 8}});
  const auto c = linalg::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatvecTransposedMatchesExplicitTranspose) {
  const auto a = random_matrix(6, 9, 3);
  const auto x = random_vector(6, 4);
  const auto y1 = linalg::matvec_transposed(a, x);
  const auto y2 = linalg::matvec(a.transposed(), x);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Matrix, ShapeMismatchThrows) {
  const auto a = random_matrix(3, 4, 5);
  EXPECT_THROW(linalg::matvec(a, Vector(3)), Error);
  EXPECT_THROW(linalg::matmul(a, a), Error);
  Matrix b(2, 2);
  EXPECT_THROW(b += a, Error);
}

TEST(Matrix, ColumnRoundTrip) {
  auto a = random_matrix(4, 3, 6);
  const Vector c{9, 8, 7, 6};
  a.set_column(1, c);
  EXPECT_EQ(a.column(1), c);
}

TEST(Matrix, ArithmeticOperators) {
  const auto a = Matrix::from_rows({{1, 2}, {3, 4}});
  const auto b = Matrix::from_rows({{4, 3}, {2, 1}});
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  const auto d = a - b;
  EXPECT_DOUBLE_EQ(d(0, 0), -3.0);
  const auto m = a * 2.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 6.0);
}

TEST(Vector, DotAndNorms) {
  const Vector a{3, 4};
  EXPECT_DOUBLE_EQ(linalg::dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(linalg::norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(linalg::norm_inf(Vector{-7, 2}), 7.0);
}

TEST(Vector, AxpyAndElementwise) {
  const Vector x{1, 2, 3};
  const Vector y{10, 10, 10};
  const auto z = linalg::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(z[2], 16.0);
  EXPECT_DOUBLE_EQ(linalg::vsub(y, x)[0], 9.0);
  EXPECT_DOUBLE_EQ(linalg::vadd(y, x)[1], 12.0);
  EXPECT_DOUBLE_EQ(linalg::scaled(x, -1.0)[0], -1.0);
}

// --- Decompositions ----------------------------------------------------------

class QrProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrProperty, ReconstructsAndOrthogonal) {
  const auto [m, n] = GetParam();
  const auto a = random_matrix(m, n, 100 + m * 31 + n);
  const auto qr = linalg::qr_decompose(a);
  // A = Q R
  const auto rec = linalg::matmul(qr.q, qr.r);
  EXPECT_LT(max_abs_diff(rec, a), 1e-10);
  // Q^T Q = I
  const auto qtq = linalg::matmul(qr.q.transposed(), qr.q);
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(n)), 1e-10);
  // R upper triangular
  for (std::size_t i = 0; i < qr.r.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(qr.r(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrProperty,
                         ::testing::Values(std::pair{3, 3}, std::pair{8, 3},
                                           std::pair{16, 16}, std::pair{40, 12},
                                           std::pair{5, 1}));

TEST(Cholesky, FactorsSpdMatrix) {
  const auto b = random_matrix(6, 6, 9);
  auto spd = linalg::matmul(b, b.transposed());
  for (std::size_t i = 0; i < 6; ++i) spd(i, i) += 1.0;
  const auto l = linalg::cholesky(spd);
  EXPECT_LT(max_abs_diff(linalg::matmul(l, l.transposed()), spd), 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  auto m = Matrix::identity(3);
  m(2, 2) = -1.0;
  EXPECT_THROW(linalg::cholesky(m), Error);
}

TEST(Solvers, TriangularSolves) {
  const auto l = Matrix::from_rows({{2, 0}, {1, 3}});
  const auto y = linalg::solve_lower(l, {4, 7});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0 / 3.0);
  const auto u = Matrix::from_rows({{2, 1}, {0, 3}});
  const auto x = linalg::solve_upper(u, {5, 6});
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.5);
}

TEST(Solvers, SquareSolveRecovers) {
  const auto a = random_matrix(10, 10, 21);
  const auto x_true = random_vector(10, 22);
  const auto b = linalg::matvec(a, x_true);
  const auto x = linalg::solve(a, b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Lstsq, OverdeterminedExactWhenConsistent) {
  const auto a = random_matrix(20, 5, 31);
  const auto x_true = random_vector(5, 32);
  const auto b = linalg::matvec(a, x_true);
  const auto x = linalg::lstsq(a, b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Lstsq, ResidualOrthogonalToColumns) {
  const auto a = random_matrix(12, 4, 41);
  const auto b = random_vector(12, 42);
  const auto x = linalg::lstsq(a, b);
  const auto r = linalg::vsub(b, linalg::matvec(a, x));
  const auto atr = linalg::matvec_transposed(a, r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(CholeskyAppend, MatchesBatchSolve) {
  const std::size_t m = 30, k = 6;
  const auto a = random_matrix(m, k, 51);
  const auto b = random_vector(m, 52);

  linalg::CholeskyAppend inc(k);
  Vector atb;
  for (std::size_t j = 0; j < k; ++j) {
    const auto col = a.column(j);
    Vector cross(j);
    for (std::size_t i = 0; i < j; ++i) cross[i] = linalg::dot(a.column(i), col);
    ASSERT_TRUE(inc.append(cross, linalg::dot(col, col)));
    atb.push_back(linalg::dot(col, b));
  }
  const auto x_inc = inc.solve(atb);
  const auto x_ls = linalg::lstsq(a, b);
  for (std::size_t i = 0; i < k; ++i) EXPECT_NEAR(x_inc[i], x_ls[i], 1e-8);
}

TEST(CholeskyAppend, RejectsDuplicateColumn) {
  const auto a = random_matrix(10, 1, 61);
  const auto col = a.column(0);
  const double g = linalg::dot(col, col);
  linalg::CholeskyAppend inc(3);
  ASSERT_TRUE(inc.append({}, g));
  // Appending a numerically identical column must be refused.
  EXPECT_FALSE(inc.append({g}, g));
  EXPECT_EQ(inc.size(), 1u);
}

TEST(CholeskyAppend, CapacityEnforced) {
  linalg::CholeskyAppend inc(1);
  ASSERT_TRUE(inc.append({}, 2.0));
  EXPECT_THROW(inc.append({0.0}, 2.0), Error);
}

// ---------------------------------------------------------------------------
// Sparse binary (CSR) operators and the blocked dense kernels behind them.

#include "linalg/sparse.hpp"

namespace {

/// Random per-column supports with `s` ones per column (the s-SRBM shape).
std::vector<std::vector<std::size_t>> random_supports(std::size_t rows,
                                                      std::size_t cols,
                                                      std::size_t s,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::size_t>> sup(cols);
  for (auto& col : sup) {
    while (col.size() < s) {
      const auto r = static_cast<std::size_t>(rng.below(rows));
      bool dup = false;
      for (auto v : col) dup = dup || v == r;
      if (!dup) col.push_back(r);
    }
  }
  return sup;
}

}  // namespace

TEST(SparseBinary, ApplyMatchesDenseBitwise) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const std::size_t m = 24 + 8 * seed, n = 96;
    const auto sup = random_supports(m, n, 3, seed);
    const auto s = linalg::SparseBinaryMatrix::from_column_supports(m, n, sup);
    EXPECT_EQ(s.nnz(), 3 * n);
    const auto dense = s.to_dense();
    const auto x = random_vector(n, 100 + seed);
    const auto y_sparse = s.apply(x);
    const auto y_dense = linalg::matvec(dense, x);
    ASSERT_EQ(y_sparse.size(), m);
    for (std::size_t i = 0; i < m; ++i) EXPECT_EQ(y_sparse[i], y_dense[i]);
  }
}

TEST(SparseBinary, WeightedApplyMatchesDenseBitwise) {
  const std::size_t m = 40, n = 128;
  const auto sup = random_supports(m, n, 2, 7);
  const auto s = linalg::SparseBinaryMatrix::from_column_supports(m, n, sup);
  Vector w(s.nnz());
  Rng rng(8);
  for (auto& v : w) v = 0.5 + 0.5 * rng.uniform(0.0, 1.0);
  const auto dense = s.to_dense(w);
  const auto x = random_vector(n, 9);
  const auto y_sparse = s.apply(x, w);
  const auto y_dense = linalg::matvec(dense, x);
  for (std::size_t i = 0; i < m; ++i) EXPECT_EQ(y_sparse[i], y_dense[i]);
}

TEST(SparseBinary, ApplyTransposedMatchesDense) {
  const std::size_t m = 32, n = 96;
  const auto sup = random_supports(m, n, 2, 11);
  const auto s = linalg::SparseBinaryMatrix::from_column_supports(m, n, sup);
  Vector w(s.nnz());
  Rng rng(12);
  for (auto& v : w) v = rng.gaussian();
  const auto y = random_vector(m, 13);
  const auto xt_sparse = s.apply_transposed(y, w);
  const auto xt_dense = linalg::matvec_transposed(s.to_dense(w), y);
  ASSERT_EQ(xt_sparse.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(xt_sparse[j], xt_dense[j], 1e-15);
  }
}

TEST(SparseBinary, DenseProductMatchesMatmulBitwise) {
  const std::size_t m = 28, n = 96, k = 33;
  const auto sup = random_supports(m, n, 2, 17);
  const auto s = linalg::SparseBinaryMatrix::from_column_supports(m, n, sup);
  Vector w(s.nnz());
  Rng rng(18);
  for (auto& v : w) v = rng.gaussian();
  const auto b = random_matrix(n, k, 19);
  const auto plain = s.dense_product(b);
  const auto plain_ref = linalg::matmul(s.to_dense(), b);
  const auto weighted = s.dense_product(b, w);
  const auto weighted_ref = linalg::matmul(s.to_dense(w), b);
  for (std::size_t i = 0; i < plain.data().size(); ++i) {
    EXPECT_EQ(plain.data()[i], plain_ref.data()[i]);
    EXPECT_EQ(weighted.data()[i], weighted_ref.data()[i]);
  }
}

TEST(SparseBinary, RejectsBadSupports) {
  EXPECT_THROW(linalg::SparseBinaryMatrix::from_column_supports(
                   4, 2, {{0, 0}, {1}}),
               Error);  // duplicate row within a column
  EXPECT_THROW(linalg::SparseBinaryMatrix::from_column_supports(4, 1, {{4}}),
               Error);  // row index out of range
}

TEST(Matrix, GramMatchesExplicitTransposeProductBitwise) {
  for (std::size_t n : {5u, 48u, 130u}) {
    const auto a = random_matrix(37, n, 700 + n);
    const auto g = linalg::gram(a);
    const auto ref = linalg::matmul(a.transposed(), a);
    ASSERT_EQ(g.rows(), n);
    ASSERT_EQ(g.cols(), n);
    for (std::size_t i = 0; i < g.data().size(); ++i) {
      EXPECT_EQ(g.data()[i], ref.data()[i]);
    }
  }
}

TEST(Matrix, BlockedMatmulMatchesNaiveTripleLoop) {
  // Sizes straddling the k-block boundary of the cache-blocked kernel.
  for (std::size_t k : {1u, 63u, 64u, 65u, 200u}) {
    const auto a = random_matrix(9, k, 900 + k);
    const auto b = random_matrix(k, 7, 901 + k);
    const auto c = linalg::matmul(a, b);
    for (std::size_t i = 0; i < 9; ++i) {
      for (std::size_t j = 0; j < 7; ++j) {
        double sum = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) sum += a(i, kk) * b(kk, j);
        EXPECT_NEAR(c(i, j), sum, 1e-12 * (1.0 + std::fabs(sum)));
      }
    }
  }
}
