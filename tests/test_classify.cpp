// Feature extraction and the epilepsy detector.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "classify/detector.hpp"
#include "classify/features.hpp"
#include "eeg/dataset.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;
using classify::FeatureExtractor;

namespace {

std::vector<double> sine(double fs, double f, double amp, std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * f *
                          static_cast<double>(i) / fs);
  }
  return x;
}

}  // namespace

TEST(Features, NamesMatchCount) {
  EXPECT_EQ(FeatureExtractor::epoch_feature_names().size(),
            FeatureExtractor::kEpochFeatures);
  EXPECT_EQ(FeatureExtractor::kSegmentFeatures,
            2 * FeatureExtractor::kEpochFeatures);
}

TEST(Features, EpochVectorShapeAndFiniteness) {
  const FeatureExtractor fx;
  const auto f = fx.epoch_features(sine(512.0, 10.0, 1e-4, 1024), 512.0);
  EXPECT_EQ(f.size(), FeatureExtractor::kEpochFeatures);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Features, DominantFrequencyOfSine) {
  const FeatureExtractor fx;
  const auto f = fx.epoch_features(sine(512.0, 10.0, 1e-4, 2048), 512.0);
  const auto names = FeatureExtractor::epoch_feature_names();
  const auto idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "dominant_hz") - names.begin());
  EXPECT_NEAR(f[idx], 10.0, 2.5);
}

TEST(Features, RelativeBandPowersSumBelowOne) {
  const FeatureExtractor fx;
  Rng rng(5);
  std::vector<double> noise(2048);
  for (auto& v : noise) v = rng.gaussian(0.0, 1e-5);
  const auto f = fx.epoch_features(noise, 512.0);
  double sum = 0.0;
  for (std::size_t i = 4; i <= 8; ++i) sum += f[i];  // the 5 band features
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.5);
}

TEST(Features, AmplitudeFeatureTracksScale) {
  const FeatureExtractor fx;
  const auto quiet = fx.epoch_features(sine(512.0, 7.0, 1e-5, 1024), 512.0);
  const auto loud = fx.epoch_features(sine(512.0, 7.0, 1e-3, 1024), 512.0);
  EXPECT_NEAR(loud[0] - quiet[0], 2.0, 1e-6);  // log10 rms: x100 -> +2
}

TEST(Features, SeizureVsNormalSeparation) {
  const eeg::Generator gen{eeg::GeneratorConfig{}};
  const FeatureExtractor fx;
  // Weak seizures are amplitude-comparable to background by design, so the
  // robust discriminator is rhythmicity: relative delta-band power. The
  // *max*-aggregated log-rms still separates (the discharge peak sticks out).
  double max_rms_n = 0.0, max_rms_s = 0.0, delta_n = 0.0, delta_s = 0.0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    const auto n = gen.normal(i).samples;
    const auto s = gen.seizure(i).samples;
    const auto fn = fx.segment_features(n, 2048.0);
    const auto fs = fx.segment_features(s, 2048.0);
    const std::size_t k = classify::FeatureExtractor::kEpochFeatures;
    max_rms_n += fn[k + 0];  // max over epochs of log-rms
    max_rms_s += fs[k + 0];
    delta_n += fn[4];  // mean relative delta-band power
    delta_s += fs[4];
  }
  EXPECT_GT(max_rms_s / trials, max_rms_n / trials + 0.1);
  // The spike-wave discharge concentrates energy in the delta band.
  EXPECT_GT(delta_s / trials, delta_n / trials + 0.1);
}

TEST(Features, EpochMatrixShape) {
  const FeatureExtractor fx({.epoch_s = 2.0});
  const auto m = fx.epoch_matrix(sine(512.0, 9.0, 1e-4, 512 * 11), 512.0);
  EXPECT_EQ(m.rows(), 5u);  // 11 s -> 5 full 2 s epochs
  EXPECT_EQ(m.cols(), FeatureExtractor::kEpochFeatures);
}

TEST(Features, TooShortThrows) {
  const FeatureExtractor fx;
  EXPECT_THROW(fx.epoch_features(std::vector<double>(32, 0.0), 512.0), Error);
  EXPECT_THROW(fx.epoch_matrix(std::vector<double>(100, 0.0), 512.0), Error);
}

TEST(EpochLabels, NormalSegmentAllZero) {
  const auto labels = classify::epoch_labels(std::nullopt, 10, 2.0);
  ASSERT_EQ(labels.size(), 10u);
  for (const auto& l : labels) {
    ASSERT_TRUE(l.has_value());
    EXPECT_DOUBLE_EQ(*l, 0.0);
  }
}

TEST(EpochLabels, DischargeSpanLabelsAndBoundaries) {
  // Discharge from 4.0 s to 12.0 s; 2 s epochs.
  eeg::IctalAnnotation ictal;
  ictal.onset_s = 4.0;
  ictal.duration_s = 8.0;
  const auto labels = classify::epoch_labels(ictal, 10, 2.0);
  // Epochs [0,2),[2,4): normal. [4..12): seizure. [12..): normal.
  EXPECT_DOUBLE_EQ(labels[0].value(), 0.0);
  EXPECT_DOUBLE_EQ(labels[1].value(), 0.0);
  for (int e = 2; e <= 5; ++e) EXPECT_DOUBLE_EQ(labels[e].value(), 1.0) << e;
  EXPECT_DOUBLE_EQ(labels[6].value(), 0.0);
  EXPECT_DOUBLE_EQ(labels[9].value(), 0.0);
}

TEST(EpochLabels, AmbiguousBoundaryExcluded) {
  // Onset mid-epoch: overlap 0.5 lies between the thresholds -> nullopt.
  eeg::IctalAnnotation ictal;
  ictal.onset_s = 3.0;
  ictal.duration_s = 10.0;
  const auto labels = classify::epoch_labels(ictal, 8, 2.0);
  EXPECT_FALSE(labels[1].has_value());  // epoch [2,4): 50 % overlap
  EXPECT_DOUBLE_EQ(labels[0].value(), 0.0);
  EXPECT_DOUBLE_EQ(labels[2].value(), 1.0);
}

TEST(EpochLabels, ThresholdsConfigurable) {
  eeg::IctalAnnotation ictal;
  ictal.onset_s = 3.0;
  ictal.duration_s = 10.0;
  const auto strict = classify::epoch_labels(ictal, 8, 2.0, 0.6, 0.6);
  EXPECT_TRUE(strict[1].has_value());  // 50 % overlap <= 0.6 -> normal
  EXPECT_DOUBLE_EQ(strict[1].value(), 0.0);
}

TEST(Detector, EpochScoringOnCleanSeizure) {
  const eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto train = eeg::make_dataset(gen, 16, 16, 909);
  classify::DetectorConfig cfg;
  cfg.augment.enabled = false;
  cfg.train.epochs = 40;
  const auto det = classify::EpilepsyDetector::train(train, cfg);

  eeg::IctalAnnotation ictal;
  const auto w = gen.seizure(12345, &ictal);
  const auto sampled = classify::ideal_resample(w, cfg.fs_hz);
  const auto score = det.score_epochs(sampled, cfg.fs_hz, ictal);
  EXPECT_GT(score.scored, 6u);
  EXPECT_GE(static_cast<double>(score.correct) /
                static_cast<double>(score.scored),
            0.8);
  // Epoch probabilities must rise inside the discharge.
  const auto probs = det.epoch_probabilities(sampled, cfg.fs_hz);
  const auto labels = classify::epoch_labels(ictal, probs.size(), 2.0);
  double in_sum = 0.0, out_sum = 0.0;
  std::size_t in_n = 0, out_n = 0;
  for (std::size_t e = 0; e < probs.size(); ++e) {
    if (!labels[e].has_value()) continue;
    if (*labels[e] > 0.5) {
      in_sum += probs[e];
      ++in_n;
    } else {
      out_sum += probs[e];
      ++out_n;
    }
  }
  if (in_n > 0 && out_n > 0) {
    EXPECT_GT(in_sum / in_n, out_sum / out_n);
  }
}

TEST(Detector, TrainsAndGeneralizesOnCleanEeg) {
  const eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto train = eeg::make_dataset(gen, 20, 20, 101);
  classify::DetectorConfig cfg;
  cfg.augment.enabled = false;  // clean-only for speed here
  cfg.train.epochs = 40;
  const auto det = classify::EpilepsyDetector::train(train, cfg);
  EXPECT_GT(det.training_accuracy(), 0.95);

  // Held-out segments.
  const auto test = eeg::make_dataset(gen, 10, 10, 202);
  std::size_t correct = 0;
  for (const auto& seg : test.segments) {
    const auto sampled = classify::ideal_resample(seg.waveform, cfg.fs_hz);
    const bool hit = det.detect(sampled, cfg.fs_hz) ==
                     (seg.label == eeg::SegmentClass::Seizure);
    if (hit) ++correct;
  }
  EXPECT_GE(correct, 18u);  // >= 90 % held-out accuracy
}

TEST(Detector, ProbabilitiesAreCalibratedOrdering) {
  const eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto train = eeg::make_dataset(gen, 16, 16, 303);
  classify::DetectorConfig cfg;
  cfg.augment.enabled = false;
  cfg.train.epochs = 40;
  const auto det = classify::EpilepsyDetector::train(train, cfg);
  const auto sn = classify::ideal_resample(gen.normal(999), cfg.fs_hz);
  const auto ss = classify::ideal_resample(gen.seizure(999), cfg.fs_hz);
  EXPECT_LT(det.seizure_probability(sn, cfg.fs_hz),
            det.seizure_probability(ss, cfg.fs_hz));
}

TEST(Detector, BlobRoundTripPreservesBehaviour) {
  const eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto train = eeg::make_dataset(gen, 8, 8, 404);
  classify::DetectorConfig cfg;
  cfg.augment.enabled = false;
  cfg.train.epochs = 15;
  const auto det = classify::EpilepsyDetector::train(train, cfg);
  const auto copy = classify::EpilepsyDetector::from_blob(det.to_blob());
  const auto x = classify::ideal_resample(gen.seizure(31), cfg.fs_hz);
  EXPECT_DOUBLE_EQ(det.seizure_probability(x, cfg.fs_hz),
                   copy.seizure_probability(x, cfg.fs_hz));
  EXPECT_DOUBLE_EQ(det.training_accuracy(), copy.training_accuracy());
}

TEST(Detector, RejectsDegenerateTrainingSets) {
  const eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto only_normal = eeg::make_dataset(gen, 6, 0, 505);
  EXPECT_THROW(classify::EpilepsyDetector::train(only_normal), Error);
  const auto tiny = eeg::make_dataset(gen, 1, 1, 506);
  EXPECT_THROW(classify::EpilepsyDetector::train(tiny), Error);
}

TEST(Detector, AugmentedTrainingStillSeparatesClasses) {
  const eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto train = eeg::make_dataset(gen, 10, 10, 606);
  classify::DetectorConfig cfg;
  cfg.train.epochs = 40;  // augmentation on by default
  const auto det = classify::EpilepsyDetector::train(train, cfg);
  EXPECT_GT(det.training_accuracy(), 0.9);
}
