// Signal-quality metrics: SNR against a reference, single-tone SNDR / ENOB
// / THD, Welch PSD calibration and band powers.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;

namespace {

std::vector<double> sine(double fs, double f, double amp, std::size_t n,
                         double phase = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * f *
                              static_cast<double>(i) / fs +
                          phase);
  }
  return x;
}

std::vector<double> white_noise(double sigma, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian(0.0, sigma);
  return x;
}

}  // namespace

TEST(BasicStats, MeanRmsVariance) {
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(dsp::mean(x), 2.5);
  EXPECT_DOUBLE_EQ(dsp::rms(x), std::sqrt(30.0 / 4.0));
  EXPECT_DOUBLE_EQ(dsp::variance(x), 1.25);
  EXPECT_THROW(dsp::mean({}), Error);
}

TEST(SnrVsReference, PerfectMatchIsInfinite) {
  const auto x = sine(1000.0, 50.0, 1.0, 1000);
  EXPECT_TRUE(std::isinf(dsp::snr_vs_reference_db(x, x)));
}

TEST(SnrVsReference, ScaleInvariant) {
  const auto ref = sine(1000.0, 50.0, 1.0, 2000);
  auto noisy = ref;
  Rng rng(4);
  for (auto& v : noisy) v += rng.gaussian(0.0, 0.01);
  const double snr1 = dsp::snr_vs_reference_db(ref, noisy);
  auto scaled = noisy;
  for (auto& v : scaled) v *= 123.0;
  const double snr2 = dsp::snr_vs_reference_db(ref, scaled);
  EXPECT_NEAR(snr1, snr2, 1e-9);
}

class SnrLevels : public ::testing::TestWithParam<double> {};

TEST_P(SnrLevels, MatchesInjectedNoise) {
  const double target_snr_db = GetParam();
  const double amp = 1.0;
  const double signal_power = amp * amp / 2.0;
  const double noise_power = signal_power / std::pow(10.0, target_snr_db / 10.0);
  const auto ref = sine(2000.0, 100.0, amp, 20000);
  auto test = ref;
  const auto noise = white_noise(std::sqrt(noise_power), ref.size(), 9);
  for (std::size_t i = 0; i < test.size(); ++i) test[i] += noise[i];
  EXPECT_NEAR(dsp::snr_vs_reference_db(ref, test), target_snr_db, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Levels, SnrLevels,
                         ::testing::Values(0.0, 10.0, 20.0, 40.0, 60.0));

TEST(AnalyzeTone, FindsFundamental) {
  const auto x = sine(4096.0, 130.0, 0.9, 8192);
  const auto a = dsp::analyze_tone(x, 4096.0);
  EXPECT_NEAR(a.fundamental_hz, 130.0, 1.0);
  EXPECT_GT(a.sndr_db, 100.0);  // clean double-precision sine
}

TEST(AnalyzeTone, SndrOfNoisySine) {
  const double fs = 4096.0;
  auto x = sine(fs, 100.0, 1.0, 32768);
  const double sigma = 0.01;  // SNR = 10 log10(0.5 / 1e-4) = 37 dB
  const auto noise = white_noise(sigma, x.size(), 17);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += noise[i];
  const auto a = dsp::analyze_tone(x, fs);
  EXPECT_NEAR(a.sndr_db, 37.0, 1.0);
}

TEST(AnalyzeTone, EnobOfIdealQuantizer) {
  // A full-scale sine quantized to N bits should show ENOB ~= N.
  const double fs = 4096.0;
  const int bits = 8;
  auto x = sine(fs, 93.7, 1.0, 65536);  // non-coherent tone frequency
  const double lsb = 2.0 / (1 << bits);
  for (auto& v : x) v = std::round(v / lsb) * lsb;
  const auto a = dsp::analyze_tone(x, fs);
  EXPECT_NEAR(a.enob, bits, 0.35);
}

TEST(AnalyzeTone, ThdOfDistortedSine) {
  // y = x + 0.01 x^2 creates HD2 at -46 dB for a unit sine (a2*A/2).
  const double fs = 8192.0;
  auto x = sine(fs, 200.0, 1.0, 32768);
  for (auto& v : x) v = v + 0.01 * v * v;
  const auto a = dsp::analyze_tone(x, fs);
  EXPECT_NEAR(a.thd_db, -46.0, 1.5);
}

TEST(AnalyzeTone, RequiresMinimumLength) {
  EXPECT_THROW(dsp::analyze_tone(std::vector<double>(10, 0.0), 100.0), Error);
}

TEST(WelchPsd, WhiteNoiseLevelCalibrated) {
  // White noise of variance sigma^2 at rate fs has one-sided PSD
  // 2 sigma^2 / fs (V^2/Hz).
  const double fs = 1000.0;
  const double sigma = 0.5;
  const auto x = white_noise(sigma, 200000, 23);
  const auto psd = dsp::welch_psd(x, fs, 512);
  double mean_level = 0.0;
  std::size_t count = 0;
  for (std::size_t k = 5; k + 5 < psd.density.size(); ++k) {
    mean_level += psd.density[k];
    ++count;
  }
  mean_level /= static_cast<double>(count);
  EXPECT_NEAR(mean_level, 2.0 * sigma * sigma / fs,
              0.1 * 2.0 * sigma * sigma / fs);
}

TEST(WelchPsd, TotalPowerMatchesVariance) {
  const auto x = white_noise(1.0, 100000, 31);
  const auto psd = dsp::welch_psd(x, 2000.0, 256);
  const double total = dsp::band_power(psd, 0.0, 1000.0);
  EXPECT_NEAR(total, 1.0, 0.1);
}

TEST(WelchPsd, SineShowsAtItsFrequency) {
  const double fs = 2048.0;
  const auto x = sine(fs, 128.0, 1.0, 32768);
  const auto psd = dsp::welch_psd(x, fs, 1024);
  const double in_band = dsp::band_power(psd, 120.0, 136.0);
  const double out_band = dsp::band_power(psd, 300.0, 1000.0);
  EXPECT_NEAR(in_band, 0.5, 0.05);  // sine power A^2/2
  EXPECT_LT(out_band, 1e-6);
}

TEST(WelchPsd, RejectsBadArguments) {
  const auto x = white_noise(1.0, 100, 1);
  EXPECT_THROW(dsp::welch_psd(x, 100.0, 4), Error);
  EXPECT_THROW(dsp::welch_psd(x, 100.0, 512), Error);  // record too short
  EXPECT_THROW(dsp::welch_psd(x, 100.0, 64, 1.5), Error);
}

TEST(BandPower, DirectOverloadAgrees) {
  const double fs = 1024.0;
  const auto x = sine(fs, 50.0, 1.0, 16384);
  const double p = dsp::band_power(x, fs, 40.0, 60.0);
  EXPECT_NEAR(p, 0.5, 0.05);
}

TEST(BandPower, EmptyBandIsZero) {
  const auto x = sine(1024.0, 50.0, 1.0, 4096);
  const auto psd = dsp::welch_psd(x, 1024.0, 256);
  EXPECT_NEAR(dsp::band_power(psd, 400.0, 400.0), 0.0, 1e-9);
  EXPECT_THROW(dsp::band_power(psd, 10.0, 5.0), Error);
}
