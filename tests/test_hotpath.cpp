// The vectorized block-sim hot path: bulk RNG fills (Box-Muller oracle and
// Ziggurat), seed-pinned golden checksums proving the refactor is
// bit-identical, schedule caching, run_stats accounting and the waveform
// arena.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "blocks/basic.hpp"
#include "blocks/sources.hpp"
#include "core/chain.hpp"
#include "eeg/generator.hpp"
#include "obs/metrics.hpp"
#include "sim/arena.hpp"
#include "sim/model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;

namespace {

/// FNV-1a over the raw bit patterns of each double, LSB first. Any change
/// to any bit of any sample changes the hash.
std::uint64_t fnv1a_doubles(const std::vector<double>& v) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (double d : v) {
    const auto bits = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

/// Standard normal CDF.
double phi(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

}  // namespace

// ---------------------------------------------------------------------------
// Bulk fill equivalence: the Box-Muller fill is the scalar path, verbatim.

TEST(RngBulk, FillUniformMatchesScalar) {
  Rng a(123), b(123);
  std::vector<double> bulk(1001);
  a.fill_uniform(bulk.data(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(bulk[i], b.uniform()) << "at " << i;
  }
}

TEST(RngBulk, FillGaussianBoxMullerMatchesScalarEvenAndOdd) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{1000}, std::size_t{1001}}) {
    Rng a(77), b(77);
    std::vector<double> bulk(n);
    a.fill_gaussian(bulk.data(), n, GaussMode::BoxMuller);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bulk[i], b.gaussian()) << "n=" << n << " at " << i;
    }
  }
}

TEST(RngBulk, FillGaussianCarriesCachedVariateAcrossCalls) {
  // An odd-length fill leaves a cached second variate behind; the next
  // fill (or scalar call) must consume it exactly as the scalar path does.
  Rng a(5), b(5);
  std::vector<double> first(3), second(4);
  a.fill_gaussian(first.data(), first.size(), GaussMode::BoxMuller);
  a.fill_gaussian(second.data(), second.size(), GaussMode::BoxMuller);
  for (double v : first) EXPECT_EQ(v, b.gaussian());
  for (double v : second) EXPECT_EQ(v, b.gaussian());
  EXPECT_EQ(a.gaussian(), b.gaussian());

  // And the other direction: a scalar call that seeds the cache, then a fill.
  Rng c(6), d(6);
  EXPECT_EQ(c.gaussian(), d.gaussian());
  std::vector<double> bulk(5);
  c.fill_gaussian(bulk.data(), bulk.size(), GaussMode::BoxMuller);
  for (double v : bulk) EXPECT_EQ(v, d.gaussian());
}

TEST(RngBulk, BulkFillCountIncreases) {
  const std::uint64_t before = Rng::bulk_fill_count();
  Rng rng(1);
  std::vector<double> buf(16);
  rng.fill_gaussian(buf.data(), buf.size());
  rng.fill_uniform(buf.data(), buf.size());
  EXPECT_GE(Rng::bulk_fill_count(), before + 2);
}

// ---------------------------------------------------------------------------
// split() determinism: the child stream must not depend on how many
// gaussian() calls (and thus cached variates) preceded the split.

TEST(RngSplit, IndependentOfPrecedingGaussianCallCount) {
  Rng a(42), b(42), c(42);
  (void)b.gaussian();  // seeds b's Box-Muller cache
  for (int i = 0; i < 7; ++i) (void)c.gaussian();

  Rng sa = a.split(9), sb = b.split(9), sc = c.split(9);
  for (int i = 0; i < 64; ++i) {
    const double va = sa.gaussian();
    EXPECT_EQ(va, sb.gaussian());
    EXPECT_EQ(va, sc.gaussian());
  }
}

// ---------------------------------------------------------------------------
// Ziggurat: not bit-compatible, but must be the same distribution.

TEST(RngZiggurat, MomentsMatchStandardNormal) {
  Rng rng(2024);
  const std::size_t n = 200000;
  std::vector<double> x(n);
  rng.fill_gaussian(x.data(), n, GaussMode::Ziggurat);
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  std::size_t tail = 0;
  for (double v : x) {
    sum += v;
    sum2 += v * v;
    sum3 += v * v * v;
    if (std::abs(v) > 3.0) ++tail;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum2 / static_cast<double>(n) - mean * mean;
  const double skew = sum3 / static_cast<double>(n);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
  EXPECT_NEAR(skew, 0.0, 0.05);
  // P(|X| > 3) = 0.0027: the tail machinery must actually fire.
  const double tail_frac = static_cast<double>(tail) / static_cast<double>(n);
  EXPECT_NEAR(tail_frac, 0.0027, 0.0010);
}

TEST(RngZiggurat, KolmogorovSmirnovAgainstNormalCdf) {
  Rng rng(31337);
  const std::size_t n = 100000;
  std::vector<double> x(n);
  rng.fill_gaussian(x.data(), n, GaussMode::Ziggurat);
  std::sort(x.begin(), x.end());
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = phi(x[i]);
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    d = std::max(d, std::max(f - lo, hi - f));
  }
  // K-S critical value at alpha = 0.001 is 1.95 / sqrt(n); the draw is
  // seed-pinned so this is a deterministic regression bound, not a flake.
  EXPECT_LT(d * std::sqrt(static_cast<double>(n)), 1.95);
}

TEST(RngZiggurat, DeterministicForSameSeed) {
  Rng a(9), b(9);
  std::vector<double> xa(257), xb(257);
  a.fill_gaussian(xa.data(), xa.size(), GaussMode::Ziggurat);
  b.fill_gaussian(xb.data(), xb.size(), GaussMode::Ziggurat);
  EXPECT_EQ(xa, xb);
}

// ---------------------------------------------------------------------------
// Seed-pinned golden checksums captured on the scalar implementation before
// the vectorization refactor. These prove the hot path is bit-identical in
// the default Box-Muller mode. If you change them on purpose, update the
// pinned values here AND in the CI bench-smoke golden assert.

TEST(Golden, ScalarGaussianStream) {
  Rng rng(12345);
  std::vector<double> g(1000);
  for (auto& v : g) v = rng.gaussian();
  EXPECT_EQ(fnv1a_doubles(g), 0x9B5BA0D57BD09D07ULL);
}

TEST(Golden, BulkBoxMullerStreamMatchesScalarChecksum) {
  Rng rng(12345);
  std::vector<double> g(1000);
  rng.fill_gaussian(g.data(), g.size(), GaussMode::BoxMuller);
  EXPECT_EQ(fnv1a_doubles(g), 0x9B5BA0D57BD09D07ULL);
}

TEST(Golden, EegGeneratorSegments) {
  if (global_gauss_mode() != GaussMode::BoxMuller) {
    GTEST_SKIP() << "goldens are pinned to the Box-Muller reference mode";
  }
  eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto normal = gen.normal(777);
  EXPECT_EQ(fnv1a_doubles(normal.samples), 0x33B5024921F9EBC4ULL);
  const auto seizure = gen.seizure(778, nullptr);
  EXPECT_EQ(fnv1a_doubles(seizure.samples), 0x44482D751FC46D20ULL);
}

TEST(Golden, BaselineAndCsChainOutputs) {
  if (global_gauss_mode() != GaussMode::BoxMuller) {
    GTEST_SKIP() << "goldens are pinned to the Box-Muller reference mode";
  }
  eeg::Generator gen{eeg::GeneratorConfig{}};
  const auto seg = gen.normal(4242);
  power::TechnologyParams tech;

  power::DesignParams base;
  auto chain = core::build_baseline_chain(tech, base, {});
  const auto out1 = core::run_chain(*chain, seg);
  EXPECT_EQ(fnv1a_doubles(out1.samples), 0x844901B7FF67731AULL);
  const auto out2 = core::run_chain(*chain, seg);  // fresh noise streams
  EXPECT_EQ(fnv1a_doubles(out2.samples), 0xC8AB50B97239C0DBULL);

  power::DesignParams cs;
  cs.cs_m = 75;
  cs.cs_c_hold_f = 1e-12;
  auto cs_chain = core::build_cs_chain(tech, cs, {});
  const auto cs_out = core::run_chain(*cs_chain, seg);
  EXPECT_EQ(fnv1a_doubles(cs_out.samples), 0xE7797B0B7D59D2BCULL);
}

// ---------------------------------------------------------------------------
// Fast path vs legacy path: identical results, cached schedule, recycled
// buffers.

namespace {

/// A model with stochastic and deterministic blocks exercising the arena.
sim::Waveform make_ramp(std::size_t n) {
  sim::Waveform w;
  w.fs = 1000.0;
  w.samples.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.samples[i] = static_cast<double>(i) * 1e-3;
  }
  return w;
}

std::unique_ptr<sim::Model> make_noisy_model() {
  auto m = std::make_unique<sim::Model>();
  auto& src = m->emplace<blocks::WaveformSource>("src", make_ramp(512));
  auto& noise = m->emplace<blocks::NoiseAdderBlock>("noise", 0.1, 99);
  auto& gain = m->emplace<blocks::GainBlock>("gain", 2.0);
  (void)src;
  (void)noise;
  (void)gain;
  m->connect("src", "noise");
  m->connect("noise", "gain");
  return m;
}

}  // namespace

TEST(ModelHotPath, FastAndLegacyPathsBitIdentical) {
  auto fast = make_noisy_model();
  auto slow = make_noisy_model();
  fast->set_fast_path(true);
  slow->set_fast_path(false);
  for (int run = 0; run < 3; ++run) {
    const auto a = fast->run();
    const auto b = slow->run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].fs, b[i].fs);
      EXPECT_EQ(a[i].samples, b[i].samples) << "run " << run;
    }
  }
}

TEST(ModelHotPath, ScheduleCacheHitsOnRepeatedRuns) {
  auto& hits = obs::counter("sim/schedule_cache_hits");
  auto& misses = obs::counter("sim/schedule_cache_misses");
  const auto h0 = hits.value();
  const auto m0 = misses.value();

  auto m = make_noisy_model();
  m->set_fast_path(true);
  m->run();
  EXPECT_EQ(misses.value(), m0 + 1);
  EXPECT_EQ(hits.value(), h0);
  m->run();
  m->run();
  EXPECT_EQ(misses.value(), m0 + 1);
  EXPECT_EQ(hits.value(), h0 + 2);

  // Re-wiring invalidates the plan.
  m->emplace<blocks::GainBlock>("post", 0.5);
  m->connect("gain", "post");
  m->run();
  EXPECT_EQ(misses.value(), m0 + 2);
}

TEST(ModelHotPath, ArenaRecyclesBuffersBetweenRuns) {
  auto m = make_noisy_model();
  m->set_fast_path(true);
  m->run();
  const auto fresh_after_first = m->arena().fresh_allocs();
  m->run();
  m->run();
  // Steady state: every per-run buffer is served from the pool.
  EXPECT_EQ(m->arena().fresh_allocs(), fresh_after_first);
  EXPECT_GT(m->arena().reuses(), 0u);
}

TEST(ModelHotPath, ProbeSurvivesRewiringAndReset) {
  auto m = make_noisy_model();
  m->run();
  const auto before = m->probe("noise").samples;
  EXPECT_FALSE(before.empty());

  // Adding a downstream block must not invalidate earlier probes' slots.
  m->emplace<blocks::GainBlock>("post", 0.5);
  m->connect("gain", "post");
  m->run();
  EXPECT_EQ(m->probe("noise").samples.size(), before.size());

  m->reset();
  EXPECT_THROW((void)m->probe("noise"), Error);
}

TEST(ModelHotPath, RunStatsAccumulateAcrossCachedRuns) {
  auto m = make_noisy_model();
  m->set_fast_path(true);
  m->run();
  m->run();
  m->run();
  const auto& stats = m->run_stats();
  EXPECT_EQ(stats.runs, 3u);
  ASSERT_EQ(stats.blocks.size(), 3u);
  for (const auto& b : stats.blocks) {
    EXPECT_EQ(b.runs, 3u);
    EXPECT_EQ(b.samples_out, 3u * 512u);
    EXPECT_GE(b.seconds, 0.0);
  }

  // reset() clears block state but not the accounting; re-wiring extends it.
  m->reset();
  m->emplace<blocks::GainBlock>("post", 0.5);
  m->connect("gain", "post");
  m->run();
  const auto& stats2 = m->run_stats();
  EXPECT_EQ(stats2.runs, 4u);
  ASSERT_EQ(stats2.blocks.size(), 4u);
  EXPECT_EQ(stats2.blocks[0].runs, 4u);
  EXPECT_EQ(stats2.blocks[3].runs, 1u);  // the late-added block

  // Per-block time shares can never exceed the total.
  double block_seconds = 0.0;
  for (const auto& b : stats2.blocks) block_seconds += b.seconds;
  EXPECT_LE(block_seconds, stats2.total_seconds + 1e-9);

  // to_string renders every block that ran, with shares.
  const std::string s = stats2.to_string();
  EXPECT_NE(s.find("src"), std::string::npos);
  EXPECT_NE(s.find("noise"), std::string::npos);
  EXPECT_NE(s.find("post"), std::string::npos);
  EXPECT_NE(s.find("runs: 4"), std::string::npos);

  m->reset_run_stats();
  EXPECT_EQ(m->run_stats().runs, 0u);
  EXPECT_TRUE(m->run_stats().blocks.empty());
}

// ---------------------------------------------------------------------------
// WaveformArena unit behaviour.

TEST(WaveformArena, ReusesReleasedStorage) {
  sim::WaveformArena arena;
  auto a = arena.acquire(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(arena.fresh_allocs(), 1u);
  const double* ptr = a.data();
  arena.release(std::move(a));
  EXPECT_EQ(arena.pooled_buffers(), 1u);

  auto b = arena.acquire(80);  // fits in the pooled capacity
  EXPECT_EQ(b.size(), 80u);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(arena.reuses(), 1u);
  EXPECT_EQ(arena.fresh_allocs(), 1u);
  EXPECT_EQ(arena.pooled_buffers(), 0u);
}

TEST(WaveformArena, PrefersSmallestFittingBuffer) {
  sim::WaveformArena arena;
  auto big = arena.acquire(1000);
  auto small = arena.acquire(64);
  arena.release(std::move(big));
  arena.release(std::move(small));
  ASSERT_EQ(arena.pooled_buffers(), 2u);

  auto got = arena.acquire(50);
  EXPECT_GE(got.capacity(), 50u);
  EXPECT_LT(got.capacity(), 1000u);  // took the small one, kept the big one
  EXPECT_EQ(arena.pooled_capacity(), 1000u);
}

TEST(WaveformArena, AcquireWaveformTagsRate) {
  sim::WaveformArena arena;
  auto w = arena.acquire_waveform(256.0, 10);
  EXPECT_EQ(w.fs, 256.0);
  EXPECT_EQ(w.samples.size(), 10u);
  arena.release(std::move(w));
  EXPECT_EQ(arena.pooled_buffers(), 1u);
  arena.clear();
  EXPECT_EQ(arena.pooled_buffers(), 0u);
  EXPECT_EQ(arena.pooled_capacity(), 0u);
}

TEST(WaveformArena, ZeroCapacityReleaseIsDropped) {
  sim::WaveformArena arena;
  arena.release(std::vector<double>{});
  EXPECT_EQ(arena.pooled_buffers(), 0u);
}
