// Neural-network substrate: forward pass, gradients (numeric check),
// training convergence, serialization and the feature standardizer.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hpp"
#include "nn/standardizer.hpp"
#include "nn/train.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace efficsense;
using nn::Activation;
using nn::Mlp;

TEST(Activations, Values) {
  EXPECT_DOUBLE_EQ(nn::apply_activation(Activation::Identity, -2.0), -2.0);
  EXPECT_DOUBLE_EQ(nn::apply_activation(Activation::ReLU, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(nn::apply_activation(Activation::ReLU, 3.0), 3.0);
  EXPECT_NEAR(nn::apply_activation(Activation::Sigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(nn::apply_activation(Activation::Tanh, 100.0), 1.0, 1e-9);
}

class ActivationDerivative : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationDerivative, MatchesNumericGradient) {
  const auto act = GetParam();
  for (double x : {-1.3, -0.2, 0.4, 2.1}) {
    const double h = 1e-6;
    const double fp = nn::apply_activation(act, x + h);
    const double fm = nn::apply_activation(act, x - h);
    const double numeric = (fp - fm) / (2.0 * h);
    const double post = nn::apply_activation(act, x);
    const double analytic = nn::activation_derivative(act, x, post);
    EXPECT_NEAR(analytic, numeric, 1e-5) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ActivationDerivative,
                         ::testing::Values(Activation::Identity,
                                           Activation::Sigmoid,
                                           Activation::Tanh));

TEST(Mlp, ForwardWithKnownWeights) {
  Mlp net({2, 2, 1}, 1);
  auto& layers = net.layers();
  // Hand-set: hidden = ReLU(W x + b), out = sigmoid(w . hidden).
  layers[0].weights = linalg::Matrix::from_rows({{1, 0}, {0, 1}});
  layers[0].bias = {0.0, -1.0};
  layers[1].weights = linalg::Matrix::from_rows({{1, 1}});
  layers[1].bias = {0.0};
  const auto out = net.forward({2.0, 3.0});
  // hidden = {2, 2}; logit = 4 -> sigmoid(4).
  EXPECT_NEAR(out[0], 1.0 / (1.0 + std::exp(-4.0)), 1e-12);
}

TEST(Mlp, ShapeChecks) {
  Mlp net({3, 4, 1}, 2);
  EXPECT_EQ(net.input_size(), 3u);
  EXPECT_EQ(net.output_size(), 1u);
  EXPECT_EQ(net.layer_count(), 2u);
  EXPECT_THROW(net.forward({1.0, 2.0}), Error);
  EXPECT_THROW(Mlp({5}, 1), Error);
}

TEST(Mlp, DeterministicInitialization) {
  Mlp a({4, 8, 1}, 7), b({4, 8, 1}, 7), c({4, 8, 1}, 8);
  EXPECT_EQ(a.layers()[0].weights.data(), b.layers()[0].weights.data());
  EXPECT_NE(a.layers()[0].weights.data(), c.layers()[0].weights.data());
}

TEST(Mlp, BlobRoundTripExact) {
  Mlp net({3, 5, 1}, 77);
  const auto blob = net.to_blob();
  const Mlp copy = Mlp::from_blob(blob);
  const linalg::Vector x{0.3, -1.2, 2.0};
  EXPECT_DOUBLE_EQ(net.predict_proba(x), copy.predict_proba(x));
}

TEST(Mlp, FromBlobRejectsGarbage) {
  EXPECT_THROW(Mlp::from_blob("not a net"), Error);
  EXPECT_THROW(Mlp::from_blob("mlp v1\n1\n2 2 1\n0.5"), Error);  // truncated
}

TEST(Train, LearnsXor) {
  // XOR: the classic non-linearly-separable toy problem.
  linalg::Matrix x(4, 2);
  x(0, 0) = 0; x(0, 1) = 0;
  x(1, 0) = 0; x(1, 1) = 1;
  x(2, 0) = 1; x(2, 1) = 0;
  x(3, 0) = 1; x(3, 1) = 1;
  const std::vector<double> y{0, 1, 1, 0};

  Mlp net({2, 8, 1}, 7);
  nn::TrainConfig cfg;
  cfg.epochs = 2500;
  cfg.batch_size = 4;
  cfg.learning_rate = 0.05;
  cfg.l2 = 0.0;
  const auto result = nn::train_binary(net, x, y, cfg);
  EXPECT_EQ(result.final_accuracy, 1.0);
  EXPECT_LT(result.final_loss, 0.1);
}

TEST(Train, SeparableBlobsReachHighAccuracy) {
  Rng rng(9);
  const std::size_t n = 200;
  linalg::Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = i % 2 == 0;
    for (std::size_t c = 0; c < 3; ++c) {
      x(i, c) = rng.gaussian(pos ? 1.5 : -1.5, 1.0);
    }
    y[i] = pos ? 1.0 : 0.0;
  }
  Mlp net({3, 8, 1}, 6);
  nn::TrainConfig cfg;
  cfg.epochs = 40;
  const auto result = nn::train_binary(net, x, y, cfg);
  EXPECT_GT(result.final_accuracy, 0.95);
  const auto eval = nn::evaluate_binary(net, x, y);
  EXPECT_GT(eval.accuracy, 0.95);
  EXPECT_NEAR(eval.accuracy, result.final_accuracy, 0.05);
}

TEST(Train, DeterministicGivenSeed) {
  linalg::Matrix x(10, 2);
  std::vector<double> y(10);
  Rng rng(3);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = rng.gaussian();
    x(i, 1) = rng.gaussian();
    y[i] = (i % 2) ? 1.0 : 0.0;
  }
  Mlp a({2, 4, 1}, 11), b({2, 4, 1}, 11);
  nn::TrainConfig cfg;
  cfg.epochs = 5;
  nn::train_binary(a, x, y, cfg);
  nn::train_binary(b, x, y, cfg);
  EXPECT_EQ(a.layers()[0].weights.data(), b.layers()[0].weights.data());
}

TEST(Train, InputValidation) {
  Mlp net({2, 3, 1}, 1);
  linalg::Matrix x(4, 2);
  EXPECT_THROW(nn::train_binary(net, x, {0, 1}, {}), Error);       // size mismatch
  EXPECT_THROW(nn::train_binary(net, x, {0, 1, 2, 1}, {}), Error);  // bad label
  linalg::Matrix wrong(4, 3);
  EXPECT_THROW(nn::train_binary(net, wrong, {0, 1, 0, 1}, {}), Error);
}

TEST(Standardizer, NormalizesColumns) {
  linalg::Matrix x(4, 2);
  x(0, 0) = 1; x(1, 0) = 2; x(2, 0) = 3; x(3, 0) = 4;
  x(0, 1) = 10; x(1, 1) = 10; x(2, 1) = 10; x(3, 1) = 10;  // constant
  nn::Standardizer s;
  s.fit(x);
  const auto t = s.transform(x);
  // Column 0: mean 2.5, population std sqrt(1.25).
  EXPECT_NEAR(t(0, 0), (1.0 - 2.5) / std::sqrt(1.25), 1e-12);
  double col_sum = 0.0;
  for (std::size_t r = 0; r < 4; ++r) col_sum += t(r, 0);
  EXPECT_NEAR(col_sum, 0.0, 1e-12);
  // Constant column: centred, left unscaled (std -> 1).
  EXPECT_DOUBLE_EQ(t(2, 1), 0.0);
}

TEST(Standardizer, RowTransformMatchesMatrix) {
  Rng rng(21);
  linalg::Matrix x(20, 3);
  for (auto& v : x.data()) v = rng.gaussian(5.0, 2.0);
  nn::Standardizer s;
  s.fit(x);
  const auto m = s.transform(x);
  const auto row = s.transform(x.column(0).empty() ? linalg::Vector{} :
                               linalg::Vector{x(7, 0), x(7, 1), x(7, 2)});
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(row[c], m(7, c), 1e-12);
}

TEST(Standardizer, BlobRoundTrip) {
  Rng rng(22);
  linalg::Matrix x(10, 4);
  for (auto& v : x.data()) v = rng.gaussian();
  nn::Standardizer s;
  s.fit(x);
  const auto copy = nn::Standardizer::from_blob(s.to_blob());
  const linalg::Vector probe{0.1, -0.5, 1.2, 3.3};
  const auto a = s.transform(probe);
  const auto b = copy.transform(probe);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Standardizer, UnfittedThrows) {
  nn::Standardizer s;
  EXPECT_THROW(s.transform(linalg::Vector{1.0}), Error);
  EXPECT_THROW(s.to_blob(), Error);
}
