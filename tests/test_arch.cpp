// The architecture layer: registry contents and lookup, the unknown-style
// hard error that replaced chain.cpp's silent passive fall-through, and the
// bitwise-equivalence guarantees — seed-pinned FNV-1a golden checksums
// proving the registry path produces the identical waveforms, EvalMetrics
// and journal RESULT_DIGEST as the legacy chain builders for all four
// migrated chains.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <unistd.h>
#include <vector>

#include "arch/architecture.hpp"
#include "blocks/sources.hpp"
#include "core/evaluator.hpp"
#include "core/sweep.hpp"
#include "eeg/dataset.hpp"
#include "run/durable.hpp"
#include "util/cache.hpp"
#include "util/error.hpp"

using namespace efficsense;
using namespace efficsense::arch;
namespace fs = std::filesystem;

namespace {

/// FNV-1a over the raw bit patterns of each double, LSB first — any change
/// to any bit of any sample changes the hash (same helper as test_hotpath).
std::uint64_t fnv1a_doubles(const std::vector<double>& v) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (double d : v) {
    const auto bits = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

power::DesignParams styled_design(int cs_m, power::CsStyle style) {
  power::DesignParams d;
  d.cs_m = cs_m;
  d.cs_style = style;
  return d;
}

/// The four legacy (design, builder, id) triples.
struct LegacyChain {
  const char* id;
  power::DesignParams design;
  std::unique_ptr<sim::Model> (*build)(const power::TechnologyParams&,
                                       const power::DesignParams&,
                                       const ChainSeeds&);
};

std::vector<LegacyChain> legacy_chains() {
  std::vector<LegacyChain> out;
  out.push_back({"baseline", styled_design(0, power::CsStyle::PassiveCharge),
                 &build_baseline_chain});
  out.push_back({"cs_passive", styled_design(75, power::CsStyle::PassiveCharge),
                 +[](const power::TechnologyParams& t,
                     const power::DesignParams& d, const ChainSeeds& s) {
                   return build_cs_chain(t, d, s, blocks::CsEncoderOptions{});
                 }});
  out.push_back({"cs_active",
                 styled_design(75, power::CsStyle::ActiveIntegrator),
                 &build_active_cs_chain});
  out.push_back({"cs_digital", styled_design(75, power::CsStyle::DigitalMac),
                 &build_digital_cs_chain});
  return out;
}

/// A deterministic EEG segment all waveform-equivalence tests share.
const sim::Waveform& test_segment() {
  static const sim::Waveform w = [] {
    const eeg::Generator gen{eeg::GeneratorConfig{}};
    return eeg::make_dataset(gen, 1, 0, 77).segments.front().waveform;
  }();
  return w;
}

struct World {
  power::TechnologyParams tech;
  eeg::Dataset dataset;
  classify::EpilepsyDetector detector;

  World()
      : dataset(eeg::make_dataset(eeg::Generator{eeg::GeneratorConfig{}}, 2, 2,
                                  11)),
        detector(classify::EpilepsyDetector::train(
            eeg::make_dataset(eeg::Generator{eeg::GeneratorConfig{}}, 12, 12,
                              22),
            [] {
              classify::DetectorConfig cfg;
              cfg.train.epochs = 40;
              return cfg;
            }())) {}
};

World& world() {
  static World w;
  return w;
}

struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("efficsense_arch_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry basics.

TEST(ArchRegistry, ListsTheFiveBuiltins) {
  const auto list = ArchRegistry::instance().list();
  ASSERT_EQ(list.size(), 5u);
  EXPECT_EQ(list[0]->id(), "baseline");
  EXPECT_EQ(list[1]->id(), "cs_active");
  EXPECT_EQ(list[2]->id(), "cs_digital");
  EXPECT_EQ(list[3]->id(), "cs_passive");
  EXPECT_EQ(list[4]->id(), "lc_adc");
  for (const Architecture* a : list) EXPECT_FALSE(a->description().empty());
}

TEST(ArchRegistry, UnknownIdErrorSuggestsTheList) {
  try {
    ArchRegistry::instance().get("cs_pasive");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cs_pasive"), std::string::npos);
    EXPECT_NE(what.find("cs_passive"), std::string::npos);
    EXPECT_NE(what.find("lc_adc"), std::string::npos);
  }
}

TEST(ArchRegistry, ForDesignReproducesLegacyDispatch) {
  auto& reg = ArchRegistry::instance();
  EXPECT_EQ(reg.for_design(styled_design(0, power::CsStyle::PassiveCharge)).id(),
            "baseline");
  EXPECT_EQ(
      reg.for_design(styled_design(75, power::CsStyle::PassiveCharge)).id(),
      "cs_passive");
  EXPECT_EQ(
      reg.for_design(styled_design(75, power::CsStyle::ActiveIntegrator)).id(),
      "cs_active");
  EXPECT_EQ(reg.for_design(styled_design(75, power::CsStyle::DigitalMac)).id(),
            "cs_digital");
}

TEST(ArchRegistry, DuplicateRegistrationThrows) {
  class Dup final : public Architecture {
   public:
    std::string id() const override { return "baseline"; }
    std::string description() const override { return "dup"; }
    bool matches(const power::DesignParams&) const override { return false; }
    std::unique_ptr<sim::Model> build_model(
        const power::TechnologyParams&, const power::DesignParams&,
        const ChainSeeds&) const override {
      return nullptr;
    }
    std::unique_ptr<Decoder> make_decoder(
        const power::DesignParams&, const ChainSeeds&,
        const cs::ReconstructorConfig&) const override {
      return nullptr;
    }
  };
  EXPECT_THROW(ArchRegistry::instance().add(std::make_unique<Dup>()), Error);
}

// ---------------------------------------------------------------------------
// The bugfix: an unrecognized cs_style used to fall through to the passive
// builder silently; it must now be a hard registry-lookup error.

TEST(ArchRegistry, UnknownCsStyleIsAHardError) {
  auto bad = styled_design(75, static_cast<power::CsStyle>(7));
  try {
    build_chain(power::TechnologyParams{}, bad, {});
    FAIL() << "expected Error, got a silently built chain";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no registered architecture"), std::string::npos);
    EXPECT_NE(what.find("cs_style=7"), std::string::npos);
    EXPECT_NE(what.find("cs_passive"), std::string::npos);  // the list
  }
  EXPECT_THROW(make_matched_reconstructor(bad, {}), Error);
}

// ---------------------------------------------------------------------------
// Bitwise equivalence: registry-built chains replay the legacy builders.

TEST(ArchEquivalence, RegistryChainsMatchLegacyWaveformsBitwise) {
  const power::TechnologyParams tech;
  for (const auto& lc : legacy_chains()) {
    auto legacy = lc.build(tech, lc.design, {});
    auto via_id =
        ArchRegistry::instance().get(lc.id).build_model(tech, lc.design, {});
    auto via_auto = build_chain(tech, lc.design, {});

    const auto ref = run_chain(*legacy, test_segment());
    const auto a = run_chain(*via_id, test_segment());
    const auto b = run_chain(*via_auto, test_segment());
    const auto h = fnv1a_doubles(ref.samples);
    EXPECT_EQ(fnv1a_doubles(a.samples), h) << lc.id;
    EXPECT_EQ(fnv1a_doubles(b.samples), h) << lc.id;
    // And the analytic reports agree entry for entry.
    const auto& arch = ArchRegistry::instance().get(lc.id);
    EXPECT_EQ(arch.power_report(*via_id).total_watts(),
              legacy->power_report().total_watts())
        << lc.id;
    EXPECT_EQ(arch.area_report(*via_id).total_unit_caps(),
              legacy->area_report().total_unit_caps())
        << lc.id;
  }
}

// Seed-pinned goldens captured on the legacy builders before the registry
// migration: the registry path must keep reproducing them bit for bit.
TEST(ArchEquivalence, SeedPinnedGoldenChecksums) {
  const power::TechnologyParams tech;
  const std::vector<std::pair<const char*, std::uint64_t>> golden = {
      {"baseline", 0x1E45030AA4D5C2B4ULL},
      {"cs_passive", 0x8D601EFE06F08DB6ULL},
      {"cs_active", 0xCC6EBAAF5A5A296CULL},
      {"cs_digital", 0x49A82B14B51B63ACULL},
  };
  for (const auto& lc : legacy_chains()) {
    auto chain =
        ArchRegistry::instance().get(lc.id).build_model(tech, lc.design, {});
    const auto out = run_chain(*chain, test_segment());
    const auto it =
        std::find_if(golden.begin(), golden.end(),
                     [&](const auto& g) { return g.first == std::string(lc.id); });
    ASSERT_NE(it, golden.end());
    EXPECT_EQ(fnv1a_doubles(out.samples), it->second) << lc.id;
  }
}

TEST(ArchEquivalence, EvaluatorMetricsIdenticalViaExplicitId) {
  for (const auto& lc : legacy_chains()) {
    core::EvalOptions auto_opt;
    auto_opt.max_segments = 2;
    const core::Evaluator legacy(world().tech, &world().dataset,
                                 &world().detector, auto_opt);
    core::EvalOptions id_opt = auto_opt;
    id_opt.architecture = lc.id;
    const core::Evaluator via_id(world().tech, &world().dataset,
                                 &world().detector, id_opt);

    const auto a = legacy.evaluate(lc.design);
    const auto b = via_id.evaluate(lc.design);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.snr_db),
              std::bit_cast<std::uint64_t>(b.snr_db))
        << lc.id;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.accuracy),
              std::bit_cast<std::uint64_t>(b.accuracy))
        << lc.id;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.power_w),
              std::bit_cast<std::uint64_t>(b.power_w))
        << lc.id;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.area_unit_caps),
              std::bit_cast<std::uint64_t>(b.area_unit_caps))
        << lc.id;
    EXPECT_EQ(a.segments_evaluated, b.segments_evaluated);
  }
}

// The whole durable pipeline: a journaled sweep over a mixed
// baseline/CS space digests identically whether chains come from the
// legacy-equivalent auto dispatch or per-point registry resolution, and
// reproduces the seed-pinned RESULT_DIGEST.
TEST(ArchEquivalence, JournalResultDigestMatchesLegacy) {
  TempDir tmp;
  core::EvalOptions opt;
  opt.recon.residual_tol = 0.02;
  opt.max_segments = 2;
  const core::Evaluator evaluator(world().tech, &world().dataset,
                                  &world().detector, opt);

  core::DesignSpace space;
  space.add_axis("lna_noise_vrms", {2e-6, 20e-6}).add_axis("cs_m", {0, 75});

  run::RunOptions options;
  options.journal_path = tmp.path("sweep.jsonl");
  options.config_digest = evaluator.config_digest();
  const run::DurableSweeper sweeper(&evaluator, options);
  const auto outcome = sweeper.run(power::DesignParams{}, space);
  ASSERT_EQ(outcome.results.size(), 4u);
  const auto csv = core::sweep_to_csv(outcome.results);

  // Seed-pinned golden: any bitwise drift in chain, decode, metrics or CSV
  // serialization shows up here.
  EXPECT_EQ(fnv1a(csv), 0x49591DAE4CC06DDAULL);

  // Resume adopts every point and re-serializes to the same bytes.
  const auto resumed = sweeper.run(power::DesignParams{}, space);
  EXPECT_EQ(resumed.points_resumed, 4u);
  EXPECT_EQ(core::sweep_to_csv(resumed.results), csv);
}

// ---------------------------------------------------------------------------
// Decoders.

TEST(Decoders, PassthroughReturnsInput) {
  PassthroughDecoder d;
  const std::vector<double> x = {1.0, -2.5, 3.25};
  EXPECT_EQ(d.decode(x, nullptr), x);
}

TEST(Decoders, CsDecoderMatchesMatchedReconstructor) {
  const auto design = styled_design(75, power::CsStyle::PassiveCharge);
  cs::ReconstructorConfig rc;
  rc.residual_tol = 0.02;
  const auto decoder =
      ArchRegistry::instance().get("cs_passive").make_decoder(design, {}, rc);
  const auto recon = make_matched_reconstructor(design, {}, rc);

  auto chain = build_cs_chain(power::TechnologyParams{}, design, {});
  const auto received = run_chain(*chain, test_segment());
  const auto via_decoder = decoder->decode(received.samples, nullptr);
  const auto via_recon = recon.reconstruct_stream(received.samples, nullptr);
  ASSERT_EQ(via_decoder.size(), via_recon.size());
  EXPECT_EQ(fnv1a_doubles(via_decoder), fnv1a_doubles(via_recon));
}

// ---------------------------------------------------------------------------
// Batched SoA engine (sim::LaneBank + Block::process_batch): every lane of a
// batched chain must be bit-identical to the scalar chain built from that
// lane's seeds — the scalar path stays the oracle — and lane i's content
// must not depend on the lane width K it rides in.

#include "util/rng.hpp"

namespace {

/// Monte-Carlo-style per-lane seeds: the mismatch (and optionally noise)
/// stream each instance would get from monte_carlo() with base seed 0xFAB.
std::vector<ChainSeeds> mc_lane_seeds(std::size_t lanes, bool vary_noise) {
  std::vector<ChainSeeds> out(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    out[i].mismatch = derive_seed(0xFAB, 2 * i);
    if (vary_noise) out[i].noise = derive_seed(0xFAB, 2 * i + 1);
  }
  return out;
}

std::uint64_t lane_hash(const sim::LaneBank& bank, std::size_t k) {
  const double* p = bank.lane(k);
  return fnv1a_doubles(std::vector<double>(p, p + bank.samples()));
}

struct BatchedArch {
  const char* id;
  power::DesignParams design;
};

std::vector<BatchedArch> batched_archs() {
  return {{"baseline", styled_design(0, power::CsStyle::PassiveCharge)},
          {"cs_passive", styled_design(75, power::CsStyle::PassiveCharge)},
          {"cs_digital", styled_design(75, power::CsStyle::DigitalMac)}};
}

}  // namespace

TEST(BatchEquivalence, LanesMatchScalarOracleBitwise) {
  const power::TechnologyParams tech;
  for (const bool vary_noise : {false, true}) {
    const auto lane_seeds = mc_lane_seeds(4, vary_noise);
    for (const auto& c : batched_archs()) {
      const auto& architecture = ArchRegistry::instance().get(c.id);
      auto batch = architecture.build_batch_model(tech, c.design, lane_seeds);
      ASSERT_NE(batch, nullptr) << c.id;
      const auto& bank =
          run_chain_batch(*batch, test_segment(), lane_seeds.size());
      EXPECT_EQ(bank.lanes(), lane_seeds.size());
      for (std::size_t k = 0; k < lane_seeds.size(); ++k) {
        auto scalar = architecture.build_model(tech, c.design, lane_seeds[k]);
        const auto out = run_chain(*scalar, test_segment());
        ASSERT_EQ(bank.samples(), out.samples.size()) << c.id;
        EXPECT_EQ(lane_hash(bank, k), fnv1a_doubles(out.samples))
            << c.id << " lane " << k
            << (vary_noise ? " (varied noise)" : " (shared noise)");
      }
    }
  }
}

TEST(BatchEquivalence, LaneSeedingIndependentOfLaneWidth) {
  // Rng::split-derived lane streams depend only on the lane's own seeds, so
  // lane i is bit-identical whether it runs at K=1, K=4 or K=8.
  const power::TechnologyParams tech;
  const auto& architecture = ArchRegistry::instance().get("cs_passive");
  const auto design = styled_design(75, power::CsStyle::PassiveCharge);

  const auto seeds8 = mc_lane_seeds(8, true);
  auto chain8 = architecture.build_batch_model(tech, design, seeds8);
  ASSERT_NE(chain8, nullptr);
  const auto& bank8 = run_chain_batch(*chain8, test_segment(), 8);
  std::vector<std::uint64_t> golden;
  for (std::size_t k = 0; k < 8; ++k) golden.push_back(lane_hash(bank8, k));

  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    const auto seeds = mc_lane_seeds(width, true);
    auto chain = architecture.build_batch_model(tech, design, seeds);
    ASSERT_NE(chain, nullptr);
    const auto& bank = run_chain_batch(*chain, test_segment(), width);
    for (std::size_t k = 0; k < width; ++k) {
      EXPECT_EQ(lane_hash(bank, k), golden[k]) << "K=" << width << " lane " << k;
    }
  }
}

TEST(BatchEquivalence, UnbatchedArchitecturesDeclineGracefully) {
  // cs_active and lc_adc have no batched model yet: build_batch_model must
  // return nullptr so callers fall back to per-instance scalar evaluation.
  const power::TechnologyParams tech;
  const auto seeds = mc_lane_seeds(2, false);
  EXPECT_EQ(ArchRegistry::instance().get("cs_active").build_batch_model(
                tech, styled_design(75, power::CsStyle::ActiveIntegrator),
                seeds),
            nullptr);
  EXPECT_EQ(ArchRegistry::instance().get("lc_adc").build_batch_model(
                tech, styled_design(0, power::CsStyle::PassiveCharge), seeds),
            nullptr);
}

TEST(BatchEquivalence, MixedPhiSeedsRejected) {
  const power::TechnologyParams tech;
  auto seeds = mc_lane_seeds(2, false);
  seeds[1].phi ^= 1;  // lanes must share the programmed sensing matrix
  EXPECT_THROW(ArchRegistry::instance().get("cs_passive").build_batch_model(
                   tech, styled_design(75, power::CsStyle::PassiveCharge),
                   seeds),
               Error);
}

TEST(BatchEquivalence, EvaluateLanesMatchesScalarEvaluate) {
  core::EvalOptions opts;
  opts.max_segments = 2;
  const core::Evaluator eval(world().tech, &world().dataset, &world().detector,
                             opts);
  power::DesignParams d = styled_design(75, power::CsStyle::PassiveCharge);
  d.lna_noise_vrms = 6e-6;
  const auto lane_seeds = mc_lane_seeds(4, false);
  const auto lanes = eval.evaluate_lanes(d, lane_seeds);
  ASSERT_EQ(lanes.size(), 4u);
  for (std::size_t k = 0; k < lane_seeds.size(); ++k) {
    core::Evaluator local = eval;
    local.set_seeds(lane_seeds[k]);
    const auto m = local.evaluate(d);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(lanes[k].snr_db),
              std::bit_cast<std::uint64_t>(m.snr_db))
        << "lane " << k;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(lanes[k].accuracy),
              std::bit_cast<std::uint64_t>(m.accuracy));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(lanes[k].power_w),
              std::bit_cast<std::uint64_t>(m.power_w));
    EXPECT_EQ(lanes[k].segments_evaluated, m.segments_evaluated);
  }
  // Fewer than two lanes is not a batch: the scalar path covers it.
  EXPECT_TRUE(eval.evaluate_lanes(d, mc_lane_seeds(1, false)).empty());
}
