// The Table II power models and Table III parameters: regression against
// hand-computed values, limiting-factor logic, monotonicity properties and
// the capacitor-area model.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "power/area.hpp"
#include "power/models.hpp"
#include "power/tech.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

using namespace efficsense;
using namespace efficsense::power;

namespace {
const double kT = units::kT;
}

TEST(TechnologyParams, DefaultsMatchTableIII) {
  TechnologyParams t;
  EXPECT_DOUBLE_EQ(t.c_logic_f, 1e-15);
  EXPECT_DOUBLE_EQ(t.gm_over_id, 20.0);
  EXPECT_DOUBLE_EQ(t.c_u_min_f, 1e-15);
  EXPECT_DOUBLE_EQ(t.i_leak_a, 1e-12);
  EXPECT_DOUBLE_EQ(t.e_bit_j, 1e-9);
  EXPECT_DOUBLE_EQ(t.v_thermal, 25.27e-3);
}

TEST(TechnologyParams, MismatchSigmaScalesAsInverseSqrtC) {
  TechnologyParams t;
  EXPECT_DOUBLE_EQ(t.sigma_cap_mismatch(1e-15), 0.01);
  EXPECT_NEAR(t.sigma_cap_mismatch(100e-15), 0.001, 1e-12);
  EXPECT_GT(t.sigma_cap_mismatch(1e-15), t.sigma_cap_mismatch(4e-15));
  EXPECT_THROW(t.sigma_cap_mismatch(0.0), Error);
}

TEST(DesignParams, DerivedRatesMatchTableIII) {
  DesignParams d;
  EXPECT_DOUBLE_EQ(d.f_sample_hz(), 2.1 * 256.0);
  EXPECT_DOUBLE_EQ(d.f_clk_hz(), 9.0 * 2.1 * 256.0);
  EXPECT_DOUBLE_EQ(d.bw_lna_hz(), 768.0);
  EXPECT_DOUBLE_EQ(d.compression_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(d.adc_rate_hz(), d.f_sample_hz());
}

TEST(DesignParams, CsRatesScaleWithCompression) {
  DesignParams d;
  d.cs_m = 96;  // N_Phi = 384 -> ratio 0.25
  EXPECT_DOUBLE_EQ(d.compression_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(d.adc_rate_hz(), d.f_sample_hz() / 4.0);
  EXPECT_DOUBLE_EQ(d.bit_rate(), d.f_sample_hz() / 4.0 * 8.0);
}

TEST(DesignParams, ShCapFromKtcNoise) {
  TechnologyParams t;
  DesignParams d;
  // At N = 8 the kT/C requirement (~0.81 fF) is below C_u,min: floored.
  d.adc_bits = 8;
  EXPECT_DOUBLE_EQ(d.sh_cap_f(t), t.c_u_min_f);
  // At N = 10 the noise requirement dominates.
  d.adc_bits = 10;
  const double expected = 12.0 * kT * std::pow(2.0, 20.0) / 4.0;
  EXPECT_NEAR(d.sh_cap_f(t), expected, 1e-19);
  // Lower resolution wants a smaller cap, floored at C_u,min.
  d.adc_bits = 1;
  EXPECT_DOUBLE_EQ(d.sh_cap_f(t), t.c_u_min_f);
}

TEST(DesignParams, LnaLoadSwitchesWithCs) {
  TechnologyParams t;
  DesignParams d;
  EXPECT_DOUBLE_EQ(d.lna_cload_f(t), d.sh_cap_f(t));
  d.cs_m = 75;
  EXPECT_DOUBLE_EQ(d.lna_cload_f(t), d.cs_c_hold_f);
}

TEST(DesignParams, ValidateCatchesBadConfigs) {
  DesignParams d;
  d.validate();  // defaults are fine
  d.adc_bits = 0;
  EXPECT_THROW(d.validate(), Error);
  d = DesignParams{};
  d.cs_m = 500;  // >= N_Phi
  EXPECT_THROW(d.validate(), Error);
  d = DesignParams{};
  d.cs_m = 75;
  d.cs_sparsity = 0;
  EXPECT_THROW(d.validate(), Error);
  d = DesignParams{};
  d.lna_noise_vrms = -1.0;
  EXPECT_THROW(d.validate(), Error);
}

// --- Raw Table II expressions -------------------------------------------------

TEST(LnaModel, NoiseLimitedHandComputed) {
  // I_noise = (NEF/v_n)^2 * 2pi * 4kT * BW * V_T.
  const double vdd = 2.0, nef = 2.0, vn = 3e-6, bw = 768.0, vt = 25.27e-3;
  const double expected_current =
      std::pow(nef / vn, 2.0) * 2.0 * std::numbers::pi * 4.0 * kT * bw * vt;
  const double p = lna_power_w(vdd, /*gbw=*/1.0, /*cload=*/1e-18, 20.0, 2.0,
                               /*fclk=*/1.0, nef, vn, bw, vt, kT);
  EXPECT_NEAR(p, vdd * expected_current, 1e-12);
  // Regression: at 3 uV this is ~1.8 uW.
  EXPECT_NEAR(p, 1.8e-6, 0.05e-6);
}

TEST(LnaModel, BandwidthLimitedHandComputed) {
  // Huge noise allowance: first branch dominates. I = GBW*2pi*C/(gm/Id).
  const double p = lna_power_w(2.0, 768e3, 2e-12, 20.0, 2.0, 4838.4, 2.0,
                               1.0 /* 1 Vrms allowed */, 768.0, 25.27e-3, kT);
  const double expected = 2.0 * 768e3 * 2.0 * std::numbers::pi * 2e-12 / 20.0;
  EXPECT_NEAR(p, expected, 1e-12);
}

TEST(LnaModel, LimitSelectionConsistent) {
  TechnologyParams t;
  DesignParams d;
  d.lna_noise_vrms = 1e-6;
  EXPECT_EQ(lna_limit(t, d), LnaLimit::Noise);
  d.lna_noise_vrms = 100e-6;
  d.cs_m = 75;
  d.cs_c_hold_f = 10e-12;  // heavy load -> bandwidth limited
  EXPECT_EQ(lna_limit(t, d), LnaLimit::Bandwidth);
}

TEST(LnaModel, PowerDecreasesWithAllowedNoise) {
  TechnologyParams t;
  DesignParams d;
  double prev = 1e9;
  for (double uv : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    d.lna_noise_vrms = uv * 1e-6;
    const double p = lna_power(t, d);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(SampleHoldModel, HandComputed) {
  // P = V_ref * f_clk * 12kT * 2^(2N) / V_FS^2.
  const double p = sample_hold_power_w(2.0, 4838.4, 8, 2.0, kT);
  EXPECT_NEAR(p, 2.0 * 4838.4 * 12.0 * kT * 65536.0 / 4.0, 1e-18);
  EXPECT_NEAR(p, 7.88e-12, 0.1e-12);  // regression: ~7.9 pW
}

TEST(SampleHoldModel, ExponentialInBits) {
  const double p8 = sample_hold_power_w(2.0, 4838.4, 8, 2.0, kT);
  const double p6 = sample_hold_power_w(2.0, 4838.4, 6, 2.0, kT);
  EXPECT_NEAR(p8 / p6, 16.0, 1e-9);
}

TEST(ComparatorModel, HandComputed) {
  // P = 2N ln2 (fclk - fs) C V_FS V_eff.
  const double p = comparator_power_w(8, 4838.4, 537.6, 50e-15, 2.0, 0.1);
  EXPECT_NEAR(p, 2.0 * 8.0 * std::log(2.0) * 4300.8 * 50e-15 * 0.2, 1e-18);
  EXPECT_THROW(comparator_power_w(8, 100.0, 200.0, 1e-15, 2.0, 0.1), Error);
}

TEST(SarLogicModel, HandComputed) {
  // P = 0.4 * 17 * 1fF * 4 V^2 * (fclk - fs).
  const double p = sar_logic_power_w(8, 1e-15, 2.0, 4838.4, 537.6);
  EXPECT_NEAR(p, 0.4 * 17.0 * 1e-15 * 4.0 * 4300.8, 1e-18);
}

TEST(DacModel, HandComputedAndClamped) {
  // At v_in = 0 the bracket is (5/6 - 2^-N - 2^-2N/3) Vref^2.
  const int n = 8;
  const double bracket =
      (5.0 / 6.0 - std::pow(0.5, n) - std::pow(0.5, 2 * n) / 3.0) * 4.0;
  const double expected = 256.0 * 4838.4 * 1e-15 / 9.0 * bracket;
  EXPECT_NEAR(dac_power_w(n, 4838.4, 1e-15, 2.0, 0.0), expected, 1e-18);
  // Large v_in can push the closed form negative; the model clamps at 0.
  EXPECT_GE(dac_power_w(2, 1000.0, 1e-15, 1.0, 5.0), 0.0);
}

TEST(TransmitterModel, HandComputed) {
  // P = fclk/(N+1) * N * E_bit = f_sample * N * E_bit.
  EXPECT_NEAR(transmitter_power_w(4838.4, 8, 1e-9), 537.6 * 8.0 * 1e-9, 1e-15);
  EXPECT_NEAR(transmitter_power_w(4838.4, 8, 1e-9), 4.3e-6, 0.01e-6);
}

TEST(CsEncoderModel, HandComputed) {
  // ceil(log2(384)) = 9; P = (9+1) * 384 * 8 * C_logic * Vdd^2 * fclk.
  const double p = cs_encoder_logic_power_w(384, 1e-15, 2.0, 4838.4);
  EXPECT_NEAR(p, 10.0 * 384.0 * 8.0 * 1e-15 * 4.0 * 4838.4, 1e-15);
  EXPECT_NEAR(p, 5.94e-7, 0.01e-7);  // regression: ~0.59 uW
}

TEST(CsEncoderModel, ZeroWhenCsDisabled) {
  TechnologyParams t;
  DesignParams d;  // cs_m = 0
  EXPECT_DOUBLE_EQ(cs_encoder_power(t, d), 0.0);
}

TEST(SwitchLeakage, Linear) {
  EXPECT_DOUBLE_EQ(switch_leakage_power_w(100, 1e-12, 2.0), 2e-10);
}

TEST(Wrappers, CsReducesAdcAndTxPower) {
  TechnologyParams t;
  DesignParams base;
  DesignParams cs = base;
  cs.cs_m = 96;  // 4x compression
  EXPECT_NEAR(transmitter_power(t, cs), transmitter_power(t, base) / 4.0,
              1e-12);
  EXPECT_LT(sar_logic_power(t, cs), sar_logic_power(t, base));
  EXPECT_LT(comparator_power(t, cs), comparator_power(t, base));
  EXPECT_LT(sample_hold_power(t, cs), sample_hold_power(t, base));
}

TEST(Wrappers, PowerIncreasesWithBits) {
  TechnologyParams t;
  DesignParams d;
  for (auto fn : {transmitter_power, sample_hold_power, sar_logic_power}) {
    d.adc_bits = 6;
    const double p6 = fn(t, d);
    d.adc_bits = 8;
    const double p8 = fn(t, d);
    EXPECT_GT(p8, p6);
  }
}

// --- Area model ---------------------------------------------------------------

TEST(AreaModel, BaselineCountsShAndDac) {
  TechnologyParams t;
  DesignParams d;
  const auto a = capacitor_area(t, d);
  EXPECT_DOUBLE_EQ(a.cs_encoder, 0.0);
  EXPECT_NEAR(a.dac, 256.0, 1e-9);
  EXPECT_NEAR(a.sample_hold, d.sh_cap_f(t) / t.c_u_min_f, 1e-9);
  EXPECT_NEAR(a.total(), a.dac + a.sample_hold, 1e-9);
}

TEST(AreaModel, CsDominatedByHoldCaps) {
  TechnologyParams t;
  DesignParams d;
  d.cs_m = 75;
  d.cs_c_hold_f = 0.5e-12;
  const auto a = capacitor_area(t, d);
  EXPECT_NEAR(a.cs_encoder, (75.0 * 0.5e-12 + 2.0 * 0.125e-12) / 1e-15, 1.0);
  EXPECT_GT(a.cs_encoder, 100.0 * a.dac);  // Fig. 9: CS costs far more area
}

TEST(AreaModel, AreaInUm2) {
  TechnologyParams t;
  // 1025 unit caps of 1 fF at 1.025 fF/um^2 -> 1000 um^2.
  EXPECT_NEAR(area_um2(t, 1025.0), 1000.0, 1e-6);
}

TEST(AreaModel, MoreBitsMoreArea) {
  TechnologyParams t;
  DesignParams d;
  d.adc_bits = 6;
  const double a6 = capacitor_area(t, d).total();
  d.adc_bits = 8;
  const double a8 = capacitor_area(t, d).total();
  EXPECT_GT(a8, a6);
}
