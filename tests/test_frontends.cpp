// The three CS encoder styles (passive charge-sharing / active integrator /
// digital MAC): power models, rate bookkeeping, functional behaviour and
// end-to-end reconstruction.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "blocks/cs_encoder_active.hpp"
#include "blocks/transmitter.hpp"
#include "blocks/cs_encoder_digital.hpp"
#include "core/chain.hpp"
#include "core/design_space.hpp"
#include "cs/effective.hpp"
#include "dsp/metrics.hpp"
#include "dsp/resample.hpp"
#include "power/models.hpp"
#include "util/error.hpp"

using namespace efficsense;
using power::CsStyle;
using power::DesignParams;
using power::TechnologyParams;

namespace {

DesignParams cs_design(CsStyle style, int m = 96) {
  DesignParams d;
  d.cs_m = m;
  d.cs_style = style;
  return d;
}

}  // namespace

TEST(StyleRates, AdcRateDependsOnStyle) {
  const auto passive = cs_design(CsStyle::PassiveCharge);
  const auto active = cs_design(CsStyle::ActiveIntegrator);
  const auto digital = cs_design(CsStyle::DigitalMac);
  // Analog styles digitize only M measurements per frame.
  EXPECT_DOUBLE_EQ(passive.adc_rate_hz(), passive.f_sample_hz() / 4.0);
  EXPECT_DOUBLE_EQ(active.adc_rate_hz(), active.f_sample_hz() / 4.0);
  // The digital MAC needs every sample converted.
  EXPECT_DOUBLE_EQ(digital.adc_rate_hz(), digital.f_sample_hz());
  // All styles transmit at the compressed word rate.
  for (const auto& d : {passive, active, digital}) {
    EXPECT_DOUBLE_EQ(d.tx_sample_rate_hz(), d.f_sample_hz() / 4.0);
  }
}

TEST(StyleRates, DigitalWordsAreWider) {
  const auto digital = cs_design(CsStyle::DigitalMac, 96);
  // Mean row weight = 2*384/96 = 8 -> 3 bits + 1 headroom.
  EXPECT_EQ(digital.digital_acc_extra_bits(), 4);
  EXPECT_EQ(digital.tx_bits(), 12);
  EXPECT_EQ(cs_design(CsStyle::PassiveCharge).tx_bits(), 8);
  // Explicit headroom override wins.
  auto d = digital;
  d.cs_acc_headroom_bits = 6;
  EXPECT_EQ(d.tx_bits(), 14);
}

TEST(StyleRates, BitRateOrdersAsExpected) {
  const TechnologyParams tech;
  const auto passive = cs_design(CsStyle::PassiveCharge);
  const auto digital = cs_design(CsStyle::DigitalMac);
  const DesignParams baseline;
  EXPECT_LT(passive.bit_rate(), digital.bit_rate());
  EXPECT_LT(digital.bit_rate(), baseline.bit_rate());
  EXPECT_LT(power::transmitter_power(tech, passive),
            power::transmitter_power(tech, digital));
}

TEST(StylePower, OtaIntegratorHandComputed) {
  // I = GBW * 2pi * C_int / (gm/Id) per OTA; 75 OTAs at 2 V.
  const double gbw = 10.0 * 537.6;
  const double expected =
      75.0 * 2.0 * gbw * 2.0 * std::numbers::pi * 1e-12 / 20.0;
  EXPECT_NEAR(power::ota_integrator_power_w(75, 2.0, gbw, 1e-12, 20.0),
              expected, 1e-15);
  EXPECT_THROW(power::ota_integrator_power_w(0, 2.0, gbw, 1e-12, 20.0), Error);
}

TEST(StylePower, DigitalMacScalesWithSparsityAndWidth) {
  const double p1 =
      power::digital_mac_power_w(2, 537.6, 12, 96, 1e-15, 2.0);
  const double p2 =
      power::digital_mac_power_w(4, 537.6, 12, 96, 1e-15, 2.0);
  EXPECT_GT(p2, p1);
  const double p3 =
      power::digital_mac_power_w(2, 537.6, 24, 96, 1e-15, 2.0);
  EXPECT_GT(p3, p1);
  // Tiny at EEG rates (the point of the scaling bench).
  EXPECT_LT(p1, 1e-9);
}

TEST(StylePower, EncoderPowerRanking) {
  // At equal configuration: passive < active and passive < digital (the
  // paper's motivation for the passive architecture).
  const TechnologyParams tech;
  const auto passive = cs_design(CsStyle::PassiveCharge);
  const auto active = cs_design(CsStyle::ActiveIntegrator);
  const auto digital = cs_design(CsStyle::DigitalMac);
  EXPECT_LT(power::cs_encoder_power(tech, passive),
            power::cs_encoder_power(tech, active));
  EXPECT_LT(power::cs_encoder_power(tech, passive),
            power::cs_encoder_power(tech, digital));
}

TEST(StylePower, LnaLoadPerStyle) {
  const TechnologyParams tech;
  auto d = cs_design(CsStyle::PassiveCharge);
  d.cs_c_hold_f = 2e-12;
  EXPECT_DOUBLE_EQ(d.lna_cload_f(tech), 2e-12);
  d.cs_style = CsStyle::ActiveIntegrator;
  EXPECT_DOUBLE_EQ(d.lna_cload_f(tech), d.cs_c_sample_f);
  d.cs_style = CsStyle::DigitalMac;
  EXPECT_DOUBLE_EQ(d.lna_cload_f(tech), d.sh_cap_f(tech));
}

TEST(EffectiveMatrix, UnityRetentionIsUniform) {
  const auto phi = cs::SparseBinaryMatrix::generate(8, 32, 2, 4);
  const auto w = cs::effective_matrix(phi, 0.125, 1.0);  // active: b = 1
  const auto dense = phi.to_dense();
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_DOUBLE_EQ(w(i, j), dense(i, j) * 0.125);
    }
  }
}

TEST(ActiveEncoder, IdealAccumulationMatchesPhi) {
  const TechnologyParams tech;
  auto d = cs_design(CsStyle::ActiveIntegrator, 32);
  d.cs_n_phi = 64;
  auto phi = cs::SparseBinaryMatrix::generate(32, 64, 2, 9);
  blocks::ActiveCsEncoderOptions opts;
  opts.enable_mismatch = false;
  opts.enable_noise = false;
  blocks::ActiveCsEncoderBlock enc("enc", tech, d, phi, 1, 2, opts);

  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(0.21 * i);
  const sim::Waveform in(d.f_sample_hz(), x);
  const auto out = enc.process({in})[0];

  const double a = d.cs_c_sample_f / d.cs_c_int_f;
  const auto y = phi.apply(x);
  ASSERT_EQ(out.size(), y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(out[i], a * y[i], 1e-12);
  }
}

TEST(ActiveEncoder, NoiseAndMismatchPerturb) {
  const TechnologyParams tech;
  auto d = cs_design(CsStyle::ActiveIntegrator, 32);
  d.cs_n_phi = 64;
  auto phi = cs::SparseBinaryMatrix::generate(32, 64, 2, 9);
  blocks::ActiveCsEncoderOptions ideal;
  ideal.enable_mismatch = false;
  ideal.enable_noise = false;
  blocks::ActiveCsEncoderBlock a("a", tech, d, phi, 1, 2, ideal);
  blocks::ActiveCsEncoderBlock b("b", tech, d, phi, 1, 2, {});
  const sim::Waveform in(d.f_sample_hz(), std::vector<double>(64, 0.3));
  const auto ya = a.process({in})[0];
  const auto yb = b.process({in})[0];
  EXPECT_NE(ya.samples, yb.samples);
}

TEST(ActiveEncoder, RejectsWrongStyle) {
  const TechnologyParams tech;
  auto d = cs_design(CsStyle::PassiveCharge, 32);
  d.cs_n_phi = 64;
  auto phi = cs::SparseBinaryMatrix::generate(32, 64, 2, 9);
  EXPECT_THROW(blocks::ActiveCsEncoderBlock("enc", tech, d, phi, 1, 2), Error);
}

TEST(DigitalEncoder, ExactBinarySums) {
  const TechnologyParams tech;
  auto d = cs_design(CsStyle::DigitalMac, 32);
  d.cs_n_phi = 64;
  auto phi = cs::SparseBinaryMatrix::generate(32, 64, 2, 9);
  blocks::DigitalCsEncoderBlock enc("enc", tech, d, phi);
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.01 * static_cast<double>(i);
  const sim::Waveform in(d.f_sample_hz(), x);
  const auto out = enc.process({in})[0];
  const auto y = phi.apply(x);
  ASSERT_EQ(out.size(), y.size());
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(out[i], y[i]);
  EXPECT_DOUBLE_EQ(out.fs, d.tx_sample_rate_hz());
}

TEST(Chains, StyleDispatchAndStructure) {
  const TechnologyParams tech;
  for (auto style : {CsStyle::PassiveCharge, CsStyle::ActiveIntegrator,
                     CsStyle::DigitalMac}) {
    const auto d = cs_design(style);
    const auto chain = core::build_chain(tech, d, {});
    EXPECT_TRUE(chain->has_block(core::kCsEncoderBlock));
    // Only the digital style keeps the classical S&H front half.
    EXPECT_EQ(chain->has_block(core::kSampleHoldBlock),
              style == CsStyle::DigitalMac);
  }
  // Style-specific builders reject mismatched designs.
  EXPECT_THROW(
      core::build_active_cs_chain(tech, cs_design(CsStyle::PassiveCharge), {}),
      Error);
  EXPECT_THROW(
      core::build_digital_cs_chain(tech, cs_design(CsStyle::ActiveIntegrator), {}),
      Error);
  EXPECT_THROW(
      core::build_cs_chain(tech, cs_design(CsStyle::DigitalMac), {}), Error);
}

TEST(Chains, EndToEndReconstructionAllStyles) {
  const TechnologyParams tech;
  // A band-limited multi-tone "biosignal" at sensor scale.
  const double fs = 2048.0;
  std::vector<double> x(static_cast<std::size_t>(fs) * 4);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = 1e-4 * (std::sin(2.0 * std::numbers::pi * 4.0 * t) +
                   0.5 * std::sin(2.0 * std::numbers::pi * 11.0 * t));
  }
  const sim::Waveform input(fs, x);

  for (auto style : {CsStyle::PassiveCharge, CsStyle::ActiveIntegrator,
                     CsStyle::DigitalMac}) {
    auto d = cs_design(style);
    d.lna_noise_vrms = 2e-6;
    d.cs_c_hold_f = 1e-12;
    auto chain = core::build_chain(tech, d, {});
    cs::ReconstructorConfig rc;
    rc.residual_tol = 0.01;
    const auto recon = core::make_matched_reconstructor(d, {}, rc);
    const auto out = core::run_chain(*chain, input);
    const auto rec = recon.reconstruct_stream(out.samples);
    ASSERT_FALSE(rec.empty());
    const auto times = dsp::uniform_times(rec.size(), d.f_sample_hz());
    const auto ref = dsp::sample_at_times(x, fs, times);
    const double snr = dsp::snr_vs_reference_db(ref, rec);
    EXPECT_GT(snr, 10.0) << "style " << static_cast<int>(style);
  }
}

TEST(DesignSpaceAxes, CsStyleAndCintMapped) {
  DesignParams d;
  core::apply_axis(d, "cs_style", 1);
  EXPECT_EQ(d.cs_style, CsStyle::ActiveIntegrator);
  core::apply_axis(d, "cs_c_int_f", 2e-12);
  EXPECT_DOUBLE_EQ(d.cs_c_int_f, 2e-12);
  EXPECT_THROW(core::apply_axis(d, "cs_style", 5), Error);
}

TEST(Transmitter, CountsWiderDigitalWords) {
  const TechnologyParams tech;
  const auto d = cs_design(CsStyle::DigitalMac, 96);
  blocks::TransmitterBlock tx("tx", tech, d, 1);
  const sim::Waveform w(d.tx_sample_rate_hz(), std::vector<double>(100, 0.5));
  tx.process({w});
  EXPECT_EQ(tx.last_bits_sent(), 100u * 12u);
  // BER injection is incompatible with widened words.
  EXPECT_THROW(blocks::TransmitterBlock("tx2", tech, d, 1, 0.01), Error);
}
