// Declarative scenario specs: JSON parsing (defaults, full schema, the
// hard-error cases typos used to slip through), digest identity, and the
// LC-ADC architecture evaluated end to end from a spec — chain build,
// event-driven power, journal round-trip and the foreign-scenario refusal.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "arch/scenario.hpp"
#include "core/evaluator.hpp"
#include "core/sweep.hpp"
#include "run/scenario.hpp"
#include "util/error.hpp"

using namespace efficsense;
using namespace efficsense::arch;

namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("efficsense_scenario_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

/// Expect scenario_from_json(json) to throw an Error whose message contains
/// every fragment.
template <typename... Fragments>
void expect_parse_error(const std::string& json, const Fragments&... fragments) {
  try {
    scenario_from_json(json);
    FAIL() << "expected Error for: " << json;
  } catch (const Error& e) {
    const std::string what = e.what();
    const std::vector<std::string> expected = {fragments...};
    for (const std::string& fragment : expected) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing \"" << fragment << "\" in: " << what;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Parsing.

TEST(ScenarioParse, EmptyObjectGivesDefaults) {
  const auto spec = scenario_from_json("{}");
  EXPECT_EQ(spec.name, "");
  EXPECT_EQ(spec.architecture, "auto");
  EXPECT_TRUE(spec.base.empty());
  EXPECT_EQ(spec.space.axis_count(), 0u);
  EXPECT_EQ(spec.space.size(), 1u);  // the single base point
  EXPECT_EQ(spec.max_segments, 0u);
  EXPECT_EQ(spec.segments, 2u);
  EXPECT_EQ(spec.train_segments, 12u);
  EXPECT_EQ(spec.seed, 2022u);
}

TEST(ScenarioParse, FullSchemaRoundTrips) {
  const auto spec = scenario_from_json(R"({
    "name": "full",
    "architecture": "cs_passive",
    "base": {"cs_m": 75, "adc_bits": 6},
    "axes": [
      {"name": "lna_noise_vrms", "values": [2e-6, 6e-6]},
      {"name": "cs_m", "values": [75, 150, 300]}
    ],
    "eval": {"residual_tol": 0.05, "sparsity": 12, "max_iters": 40,
             "max_segments": 3,
             "seeds": {"mismatch": 1, "noise": 2, "phi": 3}},
    "sweep": {"segments": 6, "train_segments": 8, "seed": 7}
  })");
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.architecture, "cs_passive");
  EXPECT_EQ(spec.space.axis_count(), 2u);
  EXPECT_EQ(spec.space.size(), 6u);
  EXPECT_DOUBLE_EQ(spec.recon.residual_tol, 0.05);
  EXPECT_EQ(spec.recon.sparsity, 12u);
  EXPECT_EQ(spec.recon.max_iters, 40u);
  EXPECT_EQ(spec.max_segments, 3u);
  EXPECT_EQ(spec.seeds.mismatch, 1u);
  EXPECT_EQ(spec.seeds.noise, 2u);
  EXPECT_EQ(spec.seeds.phi, 3u);
  EXPECT_EQ(spec.segments, 6u);
  EXPECT_EQ(spec.train_segments, 8u);
  EXPECT_EQ(spec.seed, 7u);

  const auto base = spec.base_design();
  EXPECT_EQ(base.cs_m, 75);
  EXPECT_EQ(base.adc_bits, 6);
}

TEST(ScenarioParse, CheckedInExampleSpecsParse) {
  // The repo's example specs must stay valid; paths are resolved relative
  // to this source file so the test is cwd-independent.
  const fs::path examples =
      fs::path(__FILE__).parent_path().parent_path() / "examples";
  const auto smoke =
      scenario_from_file((examples / "scenario_ci_smoke.json").string());
  EXPECT_EQ(smoke.name, "ci-smoke");
  EXPECT_EQ(smoke.space.size(), 12u);
  const auto passive =
      scenario_from_file((examples / "scenario_cs_passive.json").string());
  EXPECT_EQ(passive.architecture, "cs_passive");
  const auto lc =
      scenario_from_file((examples / "scenario_lc_adc.json").string());
  EXPECT_EQ(lc.architecture, "lc_adc");
  EXPECT_EQ(lc.space.size(), 4u);
}

// ---------------------------------------------------------------------------
// The hard-error cases (typo safety the old positional drivers lacked).

TEST(ScenarioParse, MalformedJsonReportsByteOffset) {
  expect_parse_error("{\"name\": }", "scenario JSON", "at byte");
  expect_parse_error("", "unexpected end of input");
  expect_parse_error("{} trailing", "trailing content");
}

TEST(ScenarioParse, DuplicateKeyIsAnError) {
  expect_parse_error(R"({"name": "a", "name": "b"})", "duplicate key",
                     "name");
}

TEST(ScenarioParse, UnknownKeysAreErrors) {
  expect_parse_error(R"({"nmae": "typo"})", "unknown key", "nmae",
                     "known keys");
  expect_parse_error(R"({"eval": {"residual_tolerance": 0.1}})",
                     "unknown key", "residual_tolerance");
  expect_parse_error(R"({"sweep": {"segmetns": 4}})", "unknown key",
                     "segmetns");
}

TEST(ScenarioParse, UnknownAxisNameIsAnError) {
  expect_parse_error(
      R"({"axes": [{"name": "lna_nosie_vrms", "values": [1e-6]}]})",
      "lna_nosie_vrms");
  expect_parse_error(R"({"base": {"not_an_axis": 1}})", "not_an_axis");
}

TEST(ScenarioParse, UnknownArchitectureListsTheRegistry) {
  expect_parse_error(R"({"architecture": "cs_pasive"})", "cs_pasive",
                     "cs_passive", "lc_adc", "auto");
}

TEST(ScenarioParse, InvalidSweepValuesAreErrors) {
  expect_parse_error(R"({"sweep": {"segments": 0}})", "segments must be >= 1");
  expect_parse_error(R"({"sweep": {"train_segments": 1}})",
                     "train_segments must be >= 2");
  expect_parse_error(R"({"sweep": {"seed": 2.5}})",
                     "non-negative integer");
}

TEST(ScenarioParse, MissingFileNamesThePath) {
  try {
    scenario_from_file("/nonexistent/spec.json");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/spec.json"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Digest identity.

TEST(ScenarioDigest, StableAcrossReparseAndExcludesName) {
  const std::string json = R"({
    "name": "one",
    "architecture": "lc_adc",
    "axes": [{"name": "adc_bits", "values": [6, 8]}]
  })";
  const auto a = scenario_from_json(json);
  const auto b = scenario_from_json(json);
  EXPECT_EQ(a.digest(), b.digest());

  auto renamed = scenario_from_json(json);
  renamed.name = "two";
  EXPECT_EQ(renamed.digest(), a.digest());
}

TEST(ScenarioDigest, SensitiveToResultAffectingFields) {
  const auto base = scenario_from_json(R"({"architecture": "lc_adc"})");
  EXPECT_NE(base.digest(),
            scenario_from_json(R"({"architecture": "baseline"})").digest());
  EXPECT_NE(base.digest(),
            scenario_from_json(
                R"({"architecture": "lc_adc", "sweep": {"seed": 1}})")
                .digest());
  EXPECT_NE(base.digest(),
            scenario_from_json(
                R"({"architecture": "lc_adc",
                    "axes": [{"name": "adc_bits", "values": [6]}]})")
                .digest());
  EXPECT_NE(base.digest(),
            scenario_from_json(
                R"({"architecture": "lc_adc", "eval": {"residual_tol": 0.1}})")
                .digest());
}

TEST(ScenarioDigest, FlowsIntoEvaluatorConfigDigest) {
  const auto spec = scenario_from_json(R"({"architecture": "baseline"})");
  const auto options = run::scenario_eval_options(spec);
  EXPECT_EQ(options.architecture, "baseline");
  EXPECT_EQ(options.scenario_digest, spec.digest());
  EXPECT_EQ(options.max_segments, spec.max_segments);
}

// ---------------------------------------------------------------------------
// LC-ADC end to end: the fifth architecture is evaluable purely from a
// declarative spec — without any core edits — including durable journaling.

namespace {

const char* kLcSpec = R"({
  "name": "lc-adc-e2e",
  "architecture": "lc_adc",
  "base": {"lna_noise_vrms": 6e-6},
  "axes": [{"name": "adc_bits", "values": [6, 8]}],
  "sweep": {"segments": 2, "train_segments": 4, "seed": 919}
})";

}  // namespace

TEST(LcAdcScenario, EvaluatesEndToEndWithEventDrivenPower) {
  const auto context = run::make_scenario_context(scenario_from_json(kLcSpec));
  ASSERT_EQ(context->dataset.size(), 2u);

  const auto metrics = context->evaluator->evaluate(context->base);
  EXPECT_EQ(metrics.segments_evaluated, 2u);
  EXPECT_TRUE(std::isfinite(metrics.snr_db));
  EXPECT_GE(metrics.accuracy, 0.0);
  EXPECT_LE(metrics.accuracy, 1.0);

  // The event-driven chain reports lna + adc + tx power, all live.
  EXPECT_GT(metrics.power_breakdown.watts_of("lna"), 0.0);
  EXPECT_GT(metrics.power_breakdown.watts_of("adc"), 0.0);
  EXPECT_GT(metrics.power_breakdown.watts_of("tx"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.power_w, metrics.power_breakdown.total_watts());

  // Signal-dependent: a quieter front end sees fewer level crossings, so
  // the evaluator must be averaging per-segment reports (the analytic
  // pre-run path would be design-independent here). Evaluate twice to
  // check the per-segment averaging is deterministic.
  const auto again = context->evaluator->evaluate(context->base);
  EXPECT_DOUBLE_EQ(metrics.power_w, again.power_w);
  EXPECT_DOUBLE_EQ(metrics.snr_db, again.snr_db);
}

TEST(LcAdcScenario, JournalRoundTripAndForeignSpecRefusal) {
  TempDir tmp;
  const auto context = run::make_scenario_context(scenario_from_json(kLcSpec));

  run::RunOptions options;
  options.journal_path = tmp.path("lc.jsonl");
  const auto first = run::run_scenario(*context, options);
  ASSERT_EQ(first.results.size(), 2u);
  EXPECT_EQ(first.points_evaluated, 2u);
  EXPECT_EQ(first.points_resumed, 0u);
  const auto csv = core::sweep_to_csv(first.results);

  // Resume: every point adopted from the journal, bitwise-identical CSV.
  const auto second = run::run_scenario(*context, options);
  EXPECT_EQ(second.points_resumed, 2u);
  EXPECT_EQ(second.points_evaluated, 0u);
  EXPECT_EQ(core::sweep_to_csv(second.results), csv);

  // A different scenario (changed seed => changed digest) must be refused
  // against the same journal, not silently mixed.
  auto foreign_spec = scenario_from_json(kLcSpec);
  foreign_spec.seed = 920;
  const auto foreign = run::make_scenario_context(foreign_spec);
  EXPECT_THROW(run::run_scenario(*foreign, options), Error);
}
