// The durable sweep runtime: journal round-trips, corruption handling
// (truncated tail, checksum mismatch, foreign config digest), shard/merge
// equivalence against an unsharded run, resume accounting, bounded retry,
// quarantine-and-continue and the per-point timeout.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/design_space.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/sidecar.hpp"
#include "run/durable.hpp"
#include "run/journal.hpp"
#include "util/atomic_io.hpp"
#include "util/error.hpp"

using namespace efficsense;
using namespace efficsense::core;
using namespace efficsense::run;

namespace fs = std::filesystem;

namespace {

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("efficsense_run_test_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

/// A small 2-axis space: 6 points.
DesignSpace small_space() {
  DesignSpace space;
  space.add_axis("lna_noise_vrms", {2e-6, 6e-6, 20e-6})
      .add_axis("adc_bits", {6, 8});
  return space;
}

/// Deterministic, cheap stand-in for Evaluator::evaluate: metrics derived
/// from the design parameters, so results are reproducible bit for bit.
EvalMetrics fake_metrics(const power::DesignParams& d) {
  EvalMetrics m;
  m.snr_db = 20.0 + 1e6 * d.lna_noise_vrms + d.adc_bits;
  m.accuracy = 0.9 + 0.001 * d.adc_bits;
  m.power_w = 1e-6 * d.adc_bits + d.lna_noise_vrms;
  m.area_unit_caps = 100.0 * d.adc_bits;
  m.segments_evaluated = 4;
  m.power_breakdown.add("lna", 0.5 * m.power_w);
  m.power_breakdown.add("adc", 0.5 * m.power_w);
  m.area_breakdown.add("adc", m.area_unit_caps);
  return m;
}

RunOptions options_with(const std::string& journal_path,
                        std::uint64_t digest = 42) {
  RunOptions o;
  o.journal_path = journal_path;
  o.config_digest = digest;
  return o;
}

std::string read_text(const std::string& path) {
  const auto blob = read_file(path);
  return blob ? *blob : std::string();
}

}  // namespace

// ---------------------------------------------------------------------------
// Journal line format

TEST(Journal, HeaderAndRecordRoundTrip) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  JournalHeader h;
  h.config_digest = 0xDEADBEEFCAFEF00DULL;
  h.space_digest = 0x1234;
  h.total_points = 6;
  h.shard = parse_shard("1/3");
  {
    auto w = JournalWriter::create(path, h);
    JournalRecord r;
    r.index = 4;
    r.point_hash = 0xABCD;
    r.status = PointStatus::Ok;
    r.attempts = 2;
    r.payload = "adc_bits=6;lna_noise_vrms=2e-06,1,2,3,4,5,a:1|b:2,c:3";
    w.append(r);
    JournalRecord q;
    q.index = 1;
    q.point_hash = 0x99;
    q.status = PointStatus::Quarantined;
    q.attempts = 3;
    q.payload = "evaluation failed: \"quoted\"\nsecond line";
    w.append(q);
  }
  const auto back = read_journal(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->header.config_digest, h.config_digest);
  EXPECT_EQ(back->header.space_digest, h.space_digest);
  EXPECT_EQ(back->header.total_points, 6u);
  EXPECT_EQ(back->header.shard.index, 1u);
  EXPECT_EQ(back->header.shard.count, 3u);
  ASSERT_EQ(back->records.size(), 2u);
  EXPECT_EQ(back->records[0].index, 4u);
  EXPECT_EQ(back->records[0].point_hash, 0xABCDu);
  EXPECT_EQ(back->records[0].status, PointStatus::Ok);
  EXPECT_EQ(back->records[0].attempts, 2u);
  EXPECT_EQ(back->records[0].payload,
            "adc_bits=6;lna_noise_vrms=2e-06,1,2,3,4,5,a:1|b:2,c:3");
  EXPECT_EQ(back->records[1].status, PointStatus::Quarantined);
  EXPECT_EQ(back->records[1].payload,
            "evaluation failed: \"quoted\"\nsecond line");
  EXPECT_EQ(back->dropped_lines, 0u);
}

TEST(Journal, MissingOrEmptyIsNoJournal) {
  TempDir tmp;
  EXPECT_FALSE(read_journal(tmp.path("absent.jsonl")).has_value());
  const auto path = tmp.path("empty.jsonl");
  std::ofstream(path).close();
  EXPECT_FALSE(read_journal(path).has_value());
}

TEST(Journal, TruncatedFinalLineIsDropped) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  JournalHeader h;
  h.total_points = 6;
  {
    auto w = JournalWriter::create(path, h);
    for (std::uint64_t i = 0; i < 3; ++i) {
      JournalRecord r;
      r.index = i;
      r.payload = "row-" + std::to_string(i);
      w.append(r);
    }
  }
  // Chop the file mid-way through the last record (simulates a torn write).
  auto text = read_text(path);
  const auto full_size = text.size();
  truncate_file(path, full_size - 7);

  const auto back = read_journal(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->records.size(), 2u);
  EXPECT_EQ(back->dropped_lines, 1u);
  EXPECT_LT(back->valid_bytes, full_size - 7);

  // Resuming truncates the torn tail and appends cleanly after it.
  {
    auto w = JournalWriter::resume(path, back->valid_bytes);
    JournalRecord r;
    r.index = 5;
    r.payload = "row-5";
    w.append(r);
  }
  const auto again = read_journal(path);
  ASSERT_TRUE(again.has_value());
  ASSERT_EQ(again->records.size(), 3u);
  EXPECT_EQ(again->records[2].index, 5u);
  EXPECT_EQ(again->dropped_lines, 0u);
}

TEST(Journal, ChecksumMismatchedRecordIsDropped) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  JournalHeader h;
  h.total_points = 6;
  {
    auto w = JournalWriter::create(path, h);
    JournalRecord r;
    r.index = 0;
    r.payload = "row-0";
    w.append(r);
    r.index = 1;
    r.payload = "row-1";
    w.append(r);
  }
  // Flip one payload byte of the last record: its crc no longer matches.
  auto text = read_text(path);
  const auto pos = text.rfind("row-1");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 4] = '9';
  std::ofstream(path, std::ios::trunc | std::ios::binary) << text;

  const auto back = read_journal(path);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->records.size(), 1u);
  EXPECT_EQ(back->records[0].payload, "row-0");
  EXPECT_EQ(back->dropped_lines, 1u);
}

TEST(Journal, ShardSpecParsing) {
  EXPECT_EQ(parse_shard("0/1").count, 1u);
  EXPECT_EQ(parse_shard("2/5").index, 2u);
  EXPECT_TRUE(parse_shard("0/1").whole());
  EXPECT_FALSE(parse_shard("0/2").whole());
  EXPECT_THROW(parse_shard("3/3"), Error);
  EXPECT_THROW(parse_shard("nope"), Error);
  EXPECT_THROW(parse_shard("1/"), Error);
  EXPECT_THROW(parse_shard("/3"), Error);
  EXPECT_THROW(parse_shard("1/x"), Error);
  // Round-robin ownership covers every point exactly once.
  const auto a = parse_shard("0/3");
  const auto b = parse_shard("1/3");
  const auto c = parse_shard("2/3");
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(int(a.owns(i)) + int(b.owns(i)) + int(c.owns(i)), 1);
  }
}

// ---------------------------------------------------------------------------
// Point hashing & row round-trip

TEST(PointHash, FullPrecisionAndOrderStable) {
  PointValues a{{"x", 1.0000000000000002}, {"y", 2.0}};
  PointValues b{{"y", 2.0}, {"x", 1.0000000000000002}};  // same map contents
  PointValues c{{"x", 1.0}, {"y", 2.0}};  // 1 ulp away on x
  EXPECT_EQ(hash_point(a), hash_point(b));
  EXPECT_NE(hash_point(a), hash_point(c));
}

TEST(DesignSpaceDigest, SensitiveToAxesAndValues) {
  DesignSpace a = small_space();
  DesignSpace b = small_space();
  EXPECT_EQ(a.digest(), b.digest());
  DesignSpace c;
  c.add_axis("lna_noise_vrms", {2e-6, 6e-6, 20e-6}).add_axis("adc_bits", {6, 7});
  EXPECT_NE(a.digest(), c.digest());
}

TEST(SweepRow, RoundTripIsBitwiseStable) {
  power::DesignParams base;
  SweepResult r;
  r.point = {{"adc_bits", 7}, {"lna_noise_vrms", 3.5e-6}};
  r.design = apply_point(base, r.point);
  r.metrics = fake_metrics(r.design);
  const auto row = sweep_result_to_row(r);
  const auto back = parse_sweep_row(row, base);
  EXPECT_EQ(sweep_result_to_row(back), row);
}

// ---------------------------------------------------------------------------
// DurableSweeper

TEST(DurableSweeper, FreshRunWritesJournalAndResults) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  const DurableSweeper sweeper(fake_metrics, options_with(tmp.path("j.jsonl")));
  const auto outcome = sweeper.run(base, space);
  EXPECT_EQ(outcome.results.size(), space.size());
  EXPECT_EQ(outcome.points_evaluated, space.size());
  EXPECT_EQ(outcome.points_resumed, 0u);
  EXPECT_TRUE(outcome.quarantined.empty());

  const auto j = read_journal(tmp.path("j.jsonl"));
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->records.size(), space.size());
  EXPECT_EQ(j->header.total_points, space.size());
}

TEST(DurableSweeper, ResumeSkipsJournaledPoints) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  const auto space = small_space();
  power::DesignParams base;

  // First pass: evaluate only 2 points, then "crash" (stop evaluating).
  std::size_t calls = 0;
  {
    const DurableSweeper partial(
        [&](const power::DesignParams& d) {
          if (++calls > 2) throw Error("simulated crash");
          return fake_metrics(d);
        },
        [&] {
          auto o = options_with(path);
          o.max_attempts = 1;
          return o;
        }());
    (void)partial.run(base, space);
  }
  const auto after_crash = read_journal(path);
  ASSERT_TRUE(after_crash.has_value());

  // Keep the header + the 2 ok records (each followed by its provenance
  // event): drop the quarantined tail so the second pass has real work left
  // (mimics a SIGKILL after point 2).
  const auto text = read_text(path);
  std::size_t keep_bytes = 0;
  for (int lines = 0; lines < 5; ++lines) {
    keep_bytes = text.find('\n', keep_bytes) + 1;
  }
  truncate_file(path, keep_bytes);

  const auto resumed_before =
      efficsense::obs::counter("run/points_resumed").value();
  std::size_t second_calls = 0;
  const DurableSweeper sweeper(
      [&](const power::DesignParams& d) {
        ++second_calls;
        return fake_metrics(d);
      },
      options_with(path));
  const auto outcome = sweeper.run(base, space);
  EXPECT_EQ(outcome.points_resumed, 2u);
  EXPECT_EQ(outcome.points_evaluated, space.size() - 2);
  EXPECT_EQ(second_calls, space.size() - 2);
  EXPECT_EQ(outcome.results.size(), space.size());
  EXPECT_EQ(efficsense::obs::counter("run/points_resumed").value(),
            resumed_before + 2);

  // The resumed run's serialization equals a from-scratch run's.
  const DurableSweeper fresh(fake_metrics, RunOptions{});
  const auto golden = fresh.run(base, space);
  EXPECT_EQ(sweep_to_csv(outcome.results), sweep_to_csv(golden.results));
}

TEST(DurableSweeper, RefusesForeignConfigDigest) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  const auto space = small_space();
  power::DesignParams base;
  {
    const DurableSweeper a(fake_metrics, options_with(path, 1));
    (void)a.run(base, space);
  }
  // Same journal, different evaluator-config digest: must refuse, not mix.
  const DurableSweeper b(fake_metrics, options_with(path, 2));
  EXPECT_THROW((void)b.run(base, space), Error);
  // And an unrelated space (different digest) must refuse too.
  DesignSpace other;
  other.add_axis("adc_bits", {6, 7, 8, 9, 10, 11});
  const DurableSweeper c(fake_metrics, options_with(path, 1));
  EXPECT_THROW((void)c.run(base, other), Error);
}

TEST(DurableSweeper, ShardsMergeBitwiseIdenticalToUnsharded) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;

  const DurableSweeper unsharded(fake_metrics,
                                 options_with(tmp.path("whole.jsonl")));
  const auto golden = unsharded.run(base, space);
  const auto golden_csv = sweep_to_csv(golden.results);

  std::vector<std::string> shard_paths;
  for (std::uint32_t s = 0; s < 3; ++s) {
    auto o = options_with(tmp.path("shard" + std::to_string(s) + ".jsonl"));
    o.shard = parse_shard(std::to_string(s) + "/3");
    shard_paths.push_back(o.journal_path);
    const DurableSweeper sweeper(fake_metrics, o);
    const auto slice = sweeper.run(base, space);
    EXPECT_EQ(slice.results.size(), space.size() / 3);
  }

  const auto merged =
      merge_journals(shard_paths, base, tmp.path("merged.jsonl"));
  EXPECT_EQ(merged.results.size(), space.size());
  EXPECT_EQ(sweep_to_csv(merged.results), golden_csv);

  // The merged journal itself is a valid whole-space journal.
  const auto mj = read_journal(tmp.path("merged.jsonl"));
  ASSERT_TRUE(mj.has_value());
  EXPECT_TRUE(mj->header.shard.whole());
  EXPECT_EQ(mj->records.size(), space.size());
}

TEST(Merge, RefusesIncompleteOrConflictingJournals) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;

  auto o0 = options_with(tmp.path("s0.jsonl"));
  o0.shard = parse_shard("0/3");
  (void)DurableSweeper(fake_metrics, o0).run(base, space);
  auto o1 = options_with(tmp.path("s1.jsonl"));
  o1.shard = parse_shard("1/3");
  (void)DurableSweeper(fake_metrics, o1).run(base, space);

  // Missing shard 2 -> incomplete coverage.
  EXPECT_THROW(
      (void)merge_journals({tmp.path("s0.jsonl"), tmp.path("s1.jsonl")}, base),
      Error);

  // A shard journal written under a different digest refuses to merge.
  auto o2 = options_with(tmp.path("s2_foreign.jsonl"), 777);
  o2.shard = parse_shard("2/3");
  (void)DurableSweeper(fake_metrics, o2).run(base, space);
  EXPECT_THROW((void)merge_journals({tmp.path("s0.jsonl"), tmp.path("s1.jsonl"),
                                     tmp.path("s2_foreign.jsonl")},
                                    base),
               Error);
}

TEST(DurableSweeper, RetriesThenSucceeds) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  std::size_t failures_left = 2;
  const auto retried_before =
      efficsense::obs::counter("run/points_retried").value();
  const DurableSweeper sweeper(
      [&](const power::DesignParams& d) {
        if (failures_left > 0) {
          --failures_left;
          throw Error("flaky backend");
        }
        return fake_metrics(d);
      },
      [&] {
        auto o = options_with(tmp.path("j.jsonl"));
        o.max_attempts = 3;
        return o;
      }());
  const auto outcome = sweeper.run(base, space);
  EXPECT_EQ(outcome.results.size(), space.size());
  EXPECT_TRUE(outcome.quarantined.empty());
  EXPECT_EQ(outcome.points_retried, 2u);
  EXPECT_EQ(efficsense::obs::counter("run/points_retried").value(),
            retried_before + 2);
  const auto j = read_journal(tmp.path("j.jsonl"));
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->records[0].attempts, 3u);  // failed twice, succeeded third
}

TEST(DurableSweeper, QuarantinesPathologicalPointAndContinues) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  const auto quarantined_before =
      efficsense::obs::counter("run/points_quarantined").value();
  // Point with adc_bits == 8 and the lowest noise always fails.
  const DurableSweeper sweeper(
      [&](const power::DesignParams& d) {
        if (d.adc_bits == 8 && d.lna_noise_vrms < 3e-6) {
          throw Error("pathological point");
        }
        return fake_metrics(d);
      },
      [&] {
        auto o = options_with(tmp.path("j.jsonl"));
        o.max_attempts = 2;
        return o;
      }());
  const auto outcome = sweeper.run(base, space);
  EXPECT_EQ(outcome.results.size(), space.size() - 1);
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_EQ(outcome.quarantined[0].attempts, 2u);
  EXPECT_NE(outcome.quarantined[0].error.find("pathological"),
            std::string::npos);
  EXPECT_EQ(efficsense::obs::counter("run/points_quarantined").value(),
            quarantined_before + 1);

  // Resume adopts the quarantine record instead of re-running the point.
  std::size_t calls = 0;
  const DurableSweeper resume(
      [&](const power::DesignParams& d) {
        ++calls;
        return fake_metrics(d);
      },
      [&] {
        auto o = options_with(tmp.path("j.jsonl"));
        o.max_attempts = 2;
        return o;
      }());
  const auto second = resume.run(base, space);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(second.points_resumed, space.size());
  ASSERT_EQ(second.quarantined.size(), 1u);
}

TEST(DurableSweeper, TimeoutQuarantinesSlowPoint) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  const DurableSweeper sweeper(
      [&](const power::DesignParams& d) {
        if (d.adc_bits == 6 && d.lna_noise_vrms > 1e-5) {
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
        }
        return fake_metrics(d);
      },
      [&] {
        auto o = options_with(tmp.path("j.jsonl"));
        o.point_timeout_s = 0.05;
        return o;
      }());
  const auto outcome = sweeper.run(base, space);
  EXPECT_EQ(outcome.results.size(), space.size() - 1);
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_NE(outcome.quarantined[0].error.find("timeout"), std::string::npos);
  EXPECT_EQ(outcome.quarantined[0].attempts, 1u);  // timeouts do not retry
  // Let the abandoned evaluation drain before the test exits (leak checks).
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
}

TEST(DurableSweeper, ProgressCountsResumedPoints) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  const auto space = small_space();
  power::DesignParams base;
  (void)DurableSweeper(fake_metrics, options_with(path)).run(base, space);

  std::vector<std::size_t> seen;
  const DurableSweeper resumed(fake_metrics, options_with(path));
  (void)resumed.run(base, space, nullptr,
                    [&](std::size_t done, std::size_t total) {
                      EXPECT_EQ(total, space.size());
                      seen.push_back(done);
                    });
  ASSERT_EQ(seen.size(), 1u);  // everything adopted: one terminal callback
  EXPECT_EQ(seen[0], space.size());
}

// ---------------------------------------------------------------------------
// util/atomic_io

TEST(AtomicIo, AppendFileCreatesParentsAndAppends) {
  TempDir tmp;
  const auto path = tmp.path("nested/dir/file.txt");
  {
    AppendFile f(path);
    f.append_line("one");
    f.append_line("two");
  }
  {
    AppendFile f(path);  // reopen appends, not truncates
    f.append_line("three");
  }
  EXPECT_EQ(read_text(path), "one\ntwo\nthree\n");
}

TEST(AtomicIo, AtomicWriteReplacesAndReadsBack) {
  TempDir tmp;
  const auto path = tmp.path("sub/blob.bin");
  atomic_write_file(path, "first");
  atomic_write_file(path, "second");
  const auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "second");
  EXPECT_FALSE(read_file(tmp.path("absent")).has_value());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicIo, TruncateFile) {
  TempDir tmp;
  const auto path = tmp.path("t.txt");
  atomic_write_file(path, "0123456789");
  truncate_file(path, 4);
  EXPECT_EQ(read_text(path), "0123");
  EXPECT_THROW(truncate_file(tmp.path("absent"), 0), Error);
}

// ---------------------------------------------------------------------------
// obs helpers the run layer leans on

TEST(ObsHelpers, JsonUnescapeInvertsEscape) {
  const std::string original = "line1\nline2\t\"quoted\" \\ done \x01";
  EXPECT_EQ(efficsense::obs::json_unescape(efficsense::obs::json_escape(original)),
            original);
}

TEST(ObsHelpers, CountersWithPrefix) {
  efficsense::obs::counter("runtest/alpha").inc(3);
  efficsense::obs::counter("runtest/beta").inc(1);
  efficsense::obs::counter("unrelated/gamma").inc();
  const auto got = efficsense::obs::Registry::instance().counters_with_prefix(
      "runtest/");
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, "runtest/alpha");
  EXPECT_EQ(got[0].second, 3u);
  EXPECT_EQ(got[1].first, "runtest/beta");
}

// ---------------------------------------------------------------------------
// Provenance events (telemetry)

TEST(Journal, EventRoundTrip) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  JournalHeader h;
  h.config_digest = 7;
  h.space_digest = 8;
  h.total_points = 6;
  {
    auto w = JournalWriter::create(path, h);
    PointEvent e;
    e.index = 3;
    e.status = PointStatus::Quarantined;
    e.attempts = 2;
    e.t_queue_s = 0.125;
    e.t_eval_start_s = 0.25;
    e.t_eval_end_s = 1.5;
    e.t_journal_s = 1.5625;
    e.block_sim_s = 0.75;
    e.decode_s = 0.3;
    e.detect_s = 0.125;
    e.cause = "flaky: \"quoted\"\nsecond line";
    w.append_event(e);
  }
  const auto back = read_journal(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->records.size(), 0u);
  ASSERT_EQ(back->events.size(), 1u);
  const auto& e = back->events[0];
  EXPECT_EQ(e.index, 3u);
  EXPECT_EQ(e.status, PointStatus::Quarantined);
  EXPECT_EQ(e.attempts, 2u);
  EXPECT_DOUBLE_EQ(e.t_queue_s, 0.125);
  EXPECT_DOUBLE_EQ(e.t_eval_start_s, 0.25);
  EXPECT_DOUBLE_EQ(e.t_eval_end_s, 1.5);
  EXPECT_DOUBLE_EQ(e.t_journal_s, 1.5625);
  EXPECT_DOUBLE_EQ(e.block_sim_s, 0.75);
  EXPECT_DOUBLE_EQ(e.decode_s, 0.3);
  EXPECT_DOUBLE_EQ(e.detect_s, 0.125);
  EXPECT_DOUBLE_EQ(e.eval_s(), 1.25);
  EXPECT_EQ(e.cause, "flaky: \"quoted\"\nsecond line");
  EXPECT_EQ(back->dropped_lines, 0u);
}

TEST(Journal, CorruptEventTailIsTruncated) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  JournalHeader h;
  h.total_points = 6;
  {
    auto w = JournalWriter::create(path, h);
    JournalRecord r;
    r.index = 0;
    r.payload = "row0";
    w.append(r);
    PointEvent e;
    e.index = 0;
    w.append_event(e);
  }
  // Flip one byte inside the event line (the last line): crc must reject it
  // and valid_bytes must point at the end of the record line.
  auto text = read_text(path);
  const auto last_line_start = text.rfind('\n', text.size() - 2) + 1;
  text[last_line_start + 10] ^= 0x20;
  atomic_write_file(path, text);

  const auto back = read_journal(path);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->records.size(), 1u);
  EXPECT_EQ(back->events.size(), 0u);
  EXPECT_EQ(back->dropped_lines, 1u);
  EXPECT_EQ(back->valid_bytes, last_line_start);
}

TEST(Journal, PreTelemetryJournalsWithoutEventsStillRead) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  JournalHeader h;
  h.total_points = 6;
  {
    auto w = JournalWriter::create(path, h);
    JournalRecord r;
    r.index = 2;
    r.payload = "row2";
    w.append(r);
  }
  const auto back = read_journal(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->records.size(), 1u);
  EXPECT_EQ(back->events.size(), 0u);
  EXPECT_EQ(back->dropped_lines, 0u);
}

TEST(DurableSweeper, WritesProvenanceEventsAlongsideRecords) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  const auto space = small_space();
  power::DesignParams base;
  const DurableSweeper sweeper(fake_metrics, options_with(path));
  (void)sweeper.run(base, space);

  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->records.size(), space.size());
  ASSERT_EQ(contents->events.size(), space.size());
  for (const auto& ev : contents->events) {
    EXPECT_EQ(ev.status, PointStatus::Ok);
    EXPECT_EQ(ev.attempts, 1u);
    EXPECT_TRUE(ev.cause.empty());
    EXPECT_GE(ev.eval_s(), 0.0);
    EXPECT_GE(ev.t_eval_start_s, ev.t_queue_s);
    EXPECT_GE(ev.t_journal_s, ev.t_eval_end_s);
  }
  // Resuming adopts every point and must not duplicate events.
  const DurableSweeper again(fake_metrics, options_with(path));
  const auto resumed = again.run(base, space);
  EXPECT_EQ(resumed.points_resumed, space.size());
  const auto after = read_journal(path);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->events.size(), space.size());
}

TEST(DurableSweeper, EventRecordingCanBeDisabled) {
  TempDir tmp;
  const auto path = tmp.path("j.jsonl");
  const auto space = small_space();
  power::DesignParams base;
  auto o = options_with(path);
  o.record_events = false;
  const DurableSweeper sweeper(fake_metrics, o);
  (void)sweeper.run(base, space);
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->records.size(), space.size());
  EXPECT_EQ(contents->events.size(), 0u);
}

TEST(Merge, CarriesProvenanceEvents) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  std::vector<std::string> shard_paths;
  for (std::uint32_t s = 0; s < 3; ++s) {
    auto o = options_with(tmp.path("shard" + std::to_string(s) + ".jsonl"));
    o.shard = parse_shard(std::to_string(s) + "/3");
    shard_paths.push_back(o.journal_path);
    const DurableSweeper sweeper(fake_metrics, o);
    (void)sweeper.run(base, space);
  }
  (void)merge_journals(shard_paths, base, tmp.path("merged.jsonl"));
  const auto merged = read_journal(tmp.path("merged.jsonl"));
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->records.size(), space.size());
  ASSERT_EQ(merged->events.size(), space.size());
  // Every record keeps exactly its own event, in enumeration order.
  for (std::size_t i = 0; i < merged->events.size(); ++i) {
    EXPECT_EQ(merged->events[i].index, merged->records[i].index);
  }
}
