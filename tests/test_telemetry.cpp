// Live run telemetry: status.json round-trip and staleness, TelemetryState
// frontier accounting, the StatusWriter heartbeat (atomic writes, final
// complete=true snapshot), the env knobs, and the sweep_status report
// (build_report aggregation, render_json schema stability).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "core/design_space.hpp"
#include "core/sweep.hpp"
#include "run/durable.hpp"
#include "run/journal.hpp"
#include "run/status_report.hpp"
#include "run/telemetry.hpp"
#include "util/atomic_io.hpp"
#include "util/error.hpp"

using namespace efficsense;
using namespace efficsense::core;
using namespace efficsense::run;

namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("efficsense_telemetry_test_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

/// Scoped env var override, restored on destruction.
struct ScopedEnv {
  std::string name;
  std::string saved;
  bool had = false;
  ScopedEnv(const std::string& n, const char* value) : name(n) {
    if (const char* old = std::getenv(n.c_str())) {
      had = true;
      saved = old;
    }
    if (value) {
      ::setenv(n.c_str(), value, 1);
    } else {
      ::unsetenv(n.c_str());
    }
  }
  ~ScopedEnv() {
    if (had) {
      ::setenv(name.c_str(), saved.c_str(), 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
};

DesignSpace small_space() {
  DesignSpace space;
  space.add_axis("lna_noise_vrms", {2e-6, 6e-6, 20e-6})
      .add_axis("adc_bits", {6, 8});
  return space;
}

EvalMetrics fake_metrics(const power::DesignParams& d) {
  EvalMetrics m;
  m.snr_db = 20.0 + 1e6 * d.lna_noise_vrms + d.adc_bits;
  m.accuracy = 0.9 + 0.001 * d.adc_bits;
  m.power_w = 1e-6 * d.adc_bits + d.lna_noise_vrms;
  m.area_unit_caps = 100.0 * d.adc_bits;
  m.segments_evaluated = 4;
  m.power_breakdown.add("lna", 0.5 * m.power_w);
  m.area_breakdown.add("adc", m.area_unit_caps);
  return m;
}

StatusSnapshot sample_status() {
  StatusSnapshot s;
  s.updated_unix_s = 1723000000.25;
  s.interval_s = 0.5;
  s.journal_path = "runs/sweep \"a\".jsonl";
  s.shard = "1/3";
  s.total_points = 100;
  s.owned = 33;
  s.committed = 20;
  s.frontier = 18;
  s.resumed = 5;
  s.evaluated = 15;
  s.quarantined = 2;
  s.retried = 1;
  s.complete = false;
  s.elapsed_s = 12.5;
  s.throughput_pps = 1.2;
  s.throughput_ewma_pps = 1.0 / 3.0;
  s.eta_s = 10.833;
  s.rss_bytes = 123456789.0;
  StatusSnapshot::Stage stage;
  stage.name = "block_sim";
  stage.stats.count = 15;
  stage.stats.sum = 7.5;
  stage.stats.p50 = 0.4;
  stage.stats.p90 = 0.9;
  stage.stats.p99 = 1.1;
  s.stages.push_back(stage);
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// StatusSnapshot JSON round-trip

TEST(Status, JsonRoundTrip) {
  const auto s = sample_status();
  const auto json = status_to_json(s);
  EXPECT_EQ(json.back(), '\n');
  const auto back = parse_status(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, s.version);
  EXPECT_DOUBLE_EQ(back->updated_unix_s, s.updated_unix_s);
  EXPECT_DOUBLE_EQ(back->interval_s, s.interval_s);
  EXPECT_EQ(back->journal_path, s.journal_path);
  EXPECT_EQ(back->shard, s.shard);
  EXPECT_EQ(back->total_points, s.total_points);
  EXPECT_EQ(back->owned, s.owned);
  EXPECT_EQ(back->committed, s.committed);
  EXPECT_EQ(back->frontier, s.frontier);
  EXPECT_EQ(back->resumed, s.resumed);
  EXPECT_EQ(back->evaluated, s.evaluated);
  EXPECT_EQ(back->quarantined, s.quarantined);
  EXPECT_EQ(back->retried, s.retried);
  EXPECT_EQ(back->complete, s.complete);
  EXPECT_DOUBLE_EQ(back->elapsed_s, s.elapsed_s);
  EXPECT_DOUBLE_EQ(back->throughput_pps, s.throughput_pps);
  EXPECT_DOUBLE_EQ(back->throughput_ewma_pps, s.throughput_ewma_pps);
  EXPECT_DOUBLE_EQ(back->eta_s, s.eta_s);
  EXPECT_DOUBLE_EQ(back->rss_bytes, s.rss_bytes);
  ASSERT_EQ(back->stages.size(), 1u);
  EXPECT_EQ(back->stages[0].name, "block_sim");
  EXPECT_EQ(back->stages[0].stats.count, 15u);
  EXPECT_DOUBLE_EQ(back->stages[0].stats.sum, 7.5);
  EXPECT_DOUBLE_EQ(back->stages[0].stats.p50, 0.4);
  EXPECT_DOUBLE_EQ(back->stages[0].stats.p90, 0.9);
  EXPECT_DOUBLE_EQ(back->stages[0].stats.p99, 1.1);
  // The re-serialized form is byte-identical: downstream tools can compare
  // an embedded copy against the original file verbatim.
  EXPECT_EQ(status_to_json(*back), json);
}

TEST(Status, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_status("").has_value());
  EXPECT_FALSE(parse_status("not json at all").has_value());
  EXPECT_FALSE(parse_status("{\"version\":1}").has_value());
}

TEST(Status, StalenessDetection) {
  auto s = sample_status();
  s.interval_s = 1.0;
  s.updated_unix_s = 1000.0;
  s.complete = false;
  // Fresh: age below 3*interval + 1s of slack.
  EXPECT_FALSE(status_is_stale(s, 1003.5));
  // Silent past the threshold: the writer died without finishing.
  EXPECT_TRUE(status_is_stale(s, 1004.5));
  // A complete run is never stale, no matter how old.
  s.complete = true;
  EXPECT_FALSE(status_is_stale(s, 1.0e9));
}

TEST(Status, PathResolutionAndEnvKnobs) {
  {
    ScopedEnv env("EFFICSENSE_STATUS", nullptr);
    EXPECT_EQ(status_path_for("runs/s.jsonl"), "runs/s.jsonl.status.json");
    EXPECT_EQ(status_path_for(""), "");
  }
  {
    ScopedEnv env("EFFICSENSE_STATUS", "custom/st.json");
    EXPECT_EQ(status_path_for("runs/s.jsonl"), "custom/st.json");
  }
  for (const char* off : {"off", "none", "0"}) {
    ScopedEnv env("EFFICSENSE_STATUS", off);
    EXPECT_EQ(status_path_for("runs/s.jsonl"), "");
  }
  {
    ScopedEnv env("EFFICSENSE_STATUS_INTERVAL", nullptr);
    EXPECT_DOUBLE_EQ(status_interval_s_from_env(), 5.0);
  }
  {
    ScopedEnv env("EFFICSENSE_STATUS_INTERVAL", "0.25");
    EXPECT_DOUBLE_EQ(status_interval_s_from_env(), 0.25);
  }
  {
    // Clamped to the floor, and junk falls back to the default.
    ScopedEnv env("EFFICSENSE_STATUS_INTERVAL", "0.0001");
    EXPECT_DOUBLE_EQ(status_interval_s_from_env(), 0.05);
  }
  {
    ScopedEnv env("EFFICSENSE_STATUS_INTERVAL", "banana");
    EXPECT_DOUBLE_EQ(status_interval_s_from_env(), 5.0);
  }
}

// ---------------------------------------------------------------------------
// TelemetryState

TEST(TelemetryState, FrontierIsContiguousPrefix) {
  TelemetryState st;
  JournalHeader h;
  h.total_points = 10;
  st.configure(h, 5, "j.jsonl");
  EXPECT_EQ(st.committed(), 0u);
  EXPECT_EQ(st.frontier(), 0u);

  // Out-of-order settles: the frontier only advances over the prefix.
  st.on_settled(2, false, false, 1);
  EXPECT_EQ(st.committed(), 1u);
  EXPECT_EQ(st.frontier(), 0u);
  st.on_settled(0, false, false, 1);
  EXPECT_EQ(st.frontier(), 1u);
  st.on_settled(1, false, false, 2);  // retried
  EXPECT_EQ(st.committed(), 3u);
  EXPECT_EQ(st.frontier(), 3u);  // 0,1,2 now contiguous
  st.on_settled(4, true, true, 1);  // adopted quarantined point
  EXPECT_EQ(st.committed(), 4u);
  EXPECT_EQ(st.frontier(), 3u);
  st.on_settled(3, false, false, 1);
  EXPECT_EQ(st.frontier(), 5u);

  const auto snap = st.snapshot(0.5);
  EXPECT_EQ(snap.total_points, 10u);
  EXPECT_EQ(snap.owned, 5u);
  EXPECT_EQ(snap.committed, 5u);
  EXPECT_EQ(snap.frontier, 5u);
  EXPECT_EQ(snap.resumed, 1u);
  EXPECT_EQ(snap.evaluated, 4u);
  EXPECT_EQ(snap.quarantined, 1u);
  EXPECT_EQ(snap.retried, 1u);
  EXPECT_FALSE(snap.complete);
  EXPECT_DOUBLE_EQ(snap.interval_s, 0.5);
  EXPECT_EQ(snap.journal_path, "j.jsonl");
  EXPECT_GT(snap.rss_bytes, 0.0);
  // The four stage rows are always present, even before any observation.
  ASSERT_EQ(snap.stages.size(), 4u);
  EXPECT_EQ(snap.stages[0].name, "block_sim");
  EXPECT_EQ(snap.stages[1].name, "decode");
  EXPECT_EQ(snap.stages[2].name, "detect");
  EXPECT_EQ(snap.stages[3].name, "point");

  st.mark_complete();
  EXPECT_TRUE(st.snapshot(0.5).complete);
}

// ---------------------------------------------------------------------------
// StatusWriter heartbeat

TEST(StatusWriter, WritesImmediatelyPeriodicallyAndOnStop) {
  TempDir tmp;
  const auto path = tmp.path("st.json");
  TelemetryState st;
  JournalHeader h;
  h.total_points = 6;
  st.configure(h, 6, tmp.path("j.jsonl"));
  {
    StatusWriter writer(path, 0.05, &st);
    // The first write happens at construction.
    const auto first = read_status_file(path);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->committed, 0u);
    EXPECT_FALSE(first->complete);

    for (std::uint64_t k = 0; k < 6; ++k) {
      st.on_settled(k, false, false, 1);
    }
    // The timer picks the progress up without an explicit write_now.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::uint64_t seen = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (const auto s = read_status_file(path); s && s->committed == 6) {
        seen = s->committed;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(seen, 6u);

    st.mark_complete();
    writer.stop();  // final write; destructor stop() must stay idempotent
  }
  const auto last = read_status_file(path);
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(last->complete);
  EXPECT_EQ(last->committed, 6u);
  EXPECT_EQ(last->frontier, 6u);
  EXPECT_FALSE(status_is_stale(*last, last->updated_unix_s));
}

// ---------------------------------------------------------------------------
// End to end through the DurableSweeper

TEST(DurableSweeper, HeartbeatEndsCompleteWithFrontierAtOwned) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  RunOptions o;
  o.journal_path = tmp.path("sweep.jsonl");
  o.config_digest = 42;
  o.status_interval_s = 0.05;
  const DurableSweeper sweeper(fake_metrics, o);
  (void)sweeper.run(base, space);

  const auto status = read_status_file(o.journal_path + ".status.json");
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->complete);
  EXPECT_EQ(status->total_points, space.size());
  EXPECT_EQ(status->owned, space.size());
  EXPECT_EQ(status->committed, space.size());
  EXPECT_EQ(status->frontier, space.size());
  EXPECT_EQ(status->quarantined, 0u);
  EXPECT_EQ(status->shard, "0/1");
}

TEST(DurableSweeper, StatusCanBeDisabledViaEnv) {
  TempDir tmp;
  ScopedEnv env("EFFICSENSE_STATUS", "off");
  const auto space = small_space();
  power::DesignParams base;
  RunOptions o;
  o.journal_path = tmp.path("sweep.jsonl");
  o.config_digest = 42;
  const DurableSweeper sweeper(fake_metrics, o);
  (void)sweeper.run(base, space);
  EXPECT_FALSE(fs::exists(o.journal_path + ".status.json"));
}

// ---------------------------------------------------------------------------
// sweep_status report

TEST(Report, AggregatesJournalAndHeartbeat) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  RunOptions o;
  o.journal_path = tmp.path("sweep.jsonl");
  o.config_digest = 42;
  o.status_interval_s = 0.05;
  const DurableSweeper sweeper(fake_metrics, o);
  (void)sweeper.run(base, space);

  const auto report = build_report({o.journal_path});
  EXPECT_EQ(report.total_points, space.size());
  EXPECT_EQ(report.owned, space.size());
  EXPECT_EQ(report.committed, space.size());
  EXPECT_EQ(report.frontier, space.size());
  EXPECT_EQ(report.events, space.size());
  EXPECT_TRUE(report.complete);
  EXPECT_FALSE(report.stale);
  EXPECT_TRUE(report.quarantined_points.empty());
  ASSERT_EQ(report.journals.size(), 1u);
  EXPECT_TRUE(report.journals[0].status_present);
  EXPECT_TRUE(report.journals[0].status_complete);
  ASSERT_TRUE(report.status.has_value());
  EXPECT_TRUE(report.status->complete);
  EXPECT_FALSE(report.slowest.empty());
  ASSERT_FALSE(report.stages.empty());
  EXPECT_EQ(report.stages[0].name, "block_sim");

  // Both renderers accept the report; the text view names the state.
  const auto text = render_text(report);
  EXPECT_NE(text.find("complete"), std::string::npos);
  EXPECT_NE(text.find("6/6"), std::string::npos);
}

TEST(Report, JsonSchemaIsStable) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  RunOptions o;
  o.journal_path = tmp.path("sweep.jsonl");
  o.config_digest = 42;
  o.status_interval_s = 0.05;
  const DurableSweeper sweeper(fake_metrics, o);
  (void)sweeper.run(base, space);

  const auto json = render_json(build_report({o.journal_path}));
  // Key presence is the contract CI scripts parse against.
  for (const char* key :
       {"\"schema_version\":1", "\"generated_unix_s\"", "\"complete\":true",
        "\"stale\":false", "\"total_points\"", "\"owned\"", "\"committed\"",
        "\"frontier\"", "\"quarantined\"", "\"retried\"", "\"events\"",
        "\"span_s\"", "\"throughput_pps\"", "\"trend_pps\"", "\"stages\"",
        "\"slowest\"", "\"quarantined_points\"", "\"journals\"",
        "\"status\"", "\"block_sim\"", "\"decode\"", "\"detect\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(json.back(), '\n');

  // The embedded heartbeat is the status.json file verbatim-equivalent.
  const auto file = read_status_file(o.journal_path + ".status.json");
  ASSERT_TRUE(file.has_value());
  auto embedded = status_to_json(*file);
  embedded.pop_back();  // the embedded copy has no trailing newline
  EXPECT_NE(json.find(embedded), std::string::npos);
}

TEST(Report, MissingJournalThrows) {
  TempDir tmp;
  EXPECT_THROW(build_report({tmp.path("absent.jsonl")}), Error);
}

TEST(Report, MultiShardAggregation) {
  TempDir tmp;
  const auto space = small_space();
  power::DesignParams base;
  std::vector<std::string> paths;
  for (std::uint32_t s = 0; s < 3; ++s) {
    RunOptions o;
    o.journal_path = tmp.path("shard" + std::to_string(s) + ".jsonl");
    o.config_digest = 42;
    o.shard = parse_shard(std::to_string(s) + "/3");
    o.status_interval_s = 0.05;
    paths.push_back(o.journal_path);
    const DurableSweeper sweeper(fake_metrics, o);
    (void)sweeper.run(base, space);
  }
  const auto report = build_report(paths);
  EXPECT_EQ(report.journals.size(), 3u);
  EXPECT_EQ(report.total_points, space.size());
  EXPECT_EQ(report.owned, space.size());
  EXPECT_EQ(report.committed, space.size());
  EXPECT_TRUE(report.complete);
  const auto text = render_text(report);
  EXPECT_NE(text.find("0/3"), std::string::npos);
  EXPECT_NE(text.find("2/3"), std::string::npos);
}
