#!/usr/bin/env python3
"""Bench-trajectory regression gate.

Compares throughput metrics in freshly generated BENCH_*.json files against
the committed baselines in bench/baselines.json and fails (exit 1) when any
metric regresses by more than the tolerance band. Higher is always better
for the gated metrics (they are rates), so only downward moves can fail.

Usage:
    scripts/check_bench_trajectory.py [--baselines bench/baselines.json]
                                      [--dir <dir with fresh BENCH files>]
                                      [--tolerance 0.30]

Baseline keys are "<file>:<dotted.path>" into the fresh JSON document.
A missing fresh file or metric is a hard failure: the gate must never pass
because the bench silently stopped reporting. Improvements are reported so
intentional speedups show up in the job log (copy them into the baselines
when they are real).
"""

import argparse
import json
import os
import sys


def dig(doc, dotted):
    cur = doc
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baselines", default="bench/baselines.json")
    ap.add_argument("--dir", default=".", help="directory with fresh BENCH_*.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression (default: baselines file value)",
    )
    args = ap.parse_args()

    with open(args.baselines) as f:
        baselines = json.load(f)
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(baselines.get("tolerance", 0.30))

    fresh_cache = {}
    failures = []
    checked = 0
    for key, baseline in sorted(baselines["metrics"].items()):
        file_name, dotted = key.split(":", 1)
        path = os.path.join(args.dir, file_name)
        if file_name not in fresh_cache:
            try:
                with open(path) as f:
                    fresh_cache[file_name] = json.load(f)
            except (OSError, ValueError) as e:
                fresh_cache[file_name] = None
                failures.append(f"{key}: cannot read fresh {path}: {e}")
                continue
        doc = fresh_cache[file_name]
        if doc is None:
            failures.append(f"{key}: cannot read fresh {path}")
            continue
        fresh = dig(doc, dotted)
        if not isinstance(fresh, (int, float)):
            failures.append(f"{key}: metric missing from fresh {file_name}")
            continue
        checked += 1
        floor = baseline * (1.0 - tolerance)
        delta = (fresh - baseline) / baseline if baseline else 0.0
        status = "OK"
        if fresh < floor:
            status = "FAIL"
            failures.append(
                f"{key}: {fresh:.3f} is {-delta * 100.0:.1f}% below the "
                f"baseline {baseline:.3f} (allowed {tolerance * 100.0:.0f}%)"
            )
        elif delta > tolerance:
            status = "IMPROVED (consider updating the baseline)"
        print(
            f"[{status}] {key}: fresh {fresh:.3f} vs baseline {baseline:.3f} "
            f"({delta * 100.0:+.1f}%)"
        )

    if failures:
        print(f"\nbench trajectory gate FAILED ({len(failures)} problem(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nbench trajectory gate passed: {checked} metric(s) within "
          f"{tolerance * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
