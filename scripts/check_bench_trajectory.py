#!/usr/bin/env python3
"""Bench-trajectory regression gate.

Compares throughput metrics in freshly generated BENCH_*.json files against
the committed baselines in bench/baselines.json and fails (exit 1) when any
metric regresses by more than the tolerance band.

Usage:
    scripts/check_bench_trajectory.py [--baselines bench/baselines.json]
                                      [--dir <dir with fresh BENCH files>]
                                      [--tolerance 0.30]

Baseline keys are "<file>:<dotted.path>" into the fresh JSON document. A
bare number means higher-is-better (rates: only downward moves can fail).
An object entry {"value": N, "direction": "lower"} gates a
lower-is-better metric such as a latency percentile, where only upward
moves can fail; "direction": "higher" is the explicit spelling of the
default, and an optional per-entry "tolerance" widens or narrows the band
for that one metric (latency percentiles are noisier than throughput). A missing fresh file or metric is a hard failure: the gate must
never pass because the bench silently stopped reporting. Improvements are
reported so intentional speedups show up in the job log (copy them into
the baselines when they are real).
"""

import argparse
import json
import os
import sys


def dig(doc, dotted):
    cur = doc
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baselines", default="bench/baselines.json")
    ap.add_argument("--dir", default=".", help="directory with fresh BENCH_*.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression (default: baselines file value)",
    )
    args = ap.parse_args()

    with open(args.baselines) as f:
        baselines = json.load(f)
    default_tolerance = args.tolerance
    if default_tolerance is None:
        default_tolerance = float(baselines.get("tolerance", 0.30))

    fresh_cache = {}
    failures = []
    checked = 0
    for key, baseline in sorted(baselines["metrics"].items()):
        direction = "higher"
        tolerance = default_tolerance
        if isinstance(baseline, dict):
            direction = baseline.get("direction", "higher")
            tolerance = float(baseline.get("tolerance", default_tolerance))
            baseline = baseline["value"]
        if direction not in ("higher", "lower"):
            failures.append(f"{key}: unknown direction {direction!r}")
            continue
        file_name, dotted = key.split(":", 1)
        path = os.path.join(args.dir, file_name)
        if file_name not in fresh_cache:
            try:
                with open(path) as f:
                    fresh_cache[file_name] = json.load(f)
            except (OSError, ValueError) as e:
                fresh_cache[file_name] = None
                failures.append(f"{key}: cannot read fresh {path}: {e}")
                continue
        doc = fresh_cache[file_name]
        if doc is None:
            failures.append(f"{key}: cannot read fresh {path}")
            continue
        fresh = dig(doc, dotted)
        if not isinstance(fresh, (int, float)):
            failures.append(f"{key}: metric missing from fresh {file_name}")
            continue
        checked += 1
        delta = (fresh - baseline) / baseline if baseline else 0.0
        status = "OK"
        if direction == "higher":
            floor = baseline * (1.0 - tolerance)
            if fresh < floor:
                status = "FAIL"
                failures.append(
                    f"{key}: actual {fresh:.3f} is {-delta * 100.0:.1f}% below "
                    f"the expected baseline {baseline:.3f} "
                    f"(allowed regression {tolerance * 100.0:.0f}%, "
                    f"floor {floor:.3f})"
                )
            elif delta > tolerance:
                status = "IMPROVED (consider updating the baseline)"
        else:  # lower is better (latency-style metric)
            ceiling = baseline * (1.0 + tolerance)
            if fresh > ceiling:
                status = "FAIL"
                failures.append(
                    f"{key}: actual {fresh:.3f} is {delta * 100.0:.1f}% above "
                    f"the expected baseline {baseline:.3f} "
                    f"(allowed regression {tolerance * 100.0:.0f}%, "
                    f"ceiling {ceiling:.3f})"
                )
            elif delta < -tolerance:
                status = "IMPROVED (consider updating the baseline)"
        print(
            f"[{status}] {key} ({direction} is better): "
            f"fresh {fresh:.3f} vs baseline {baseline:.3f} "
            f"({delta * 100.0:+.1f}%)"
        )

    if failures:
        print(f"\nbench trajectory gate FAILED ({len(failures)} problem(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nbench trajectory gate passed: {checked} metric(s) within "
          f"tolerance (default {default_tolerance * 100.0:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
