// run_sweep — the durable, scenario-driven sweep driver the CI harness
// kills, resumes, shards and merges. It evaluates the design space of a
// declarative scenario spec (arch::ScenarioSpec JSON; the built-in default
// is the CI smoke spec, identical to examples/scenario_ci_smoke.json)
// through run::DurableSweeper, journaling every point, and prints
// machine-checkable lines:
//
//   points_resumed=... points_evaluated=... points_retried=... points_quarantined=...
//   RESULT_DIGEST=<fnv1a64 of the result CSV>
//
// Modes:
//   run_sweep --journal results/ci/sweep.jsonl [--scenario spec.json]
//             [--out sweep.csv] [--timeout <s>] [--point-delay-ms <n>]
//   run_sweep --merge merged.jsonl --inputs s0.jsonl s1.jsonl s2.jsonl
//             [--scenario spec.json] [--out merged.csv]
//   run_sweep --coordinator <spool-dir> [--workers <N>] [--lease-ttl <s>]
//             [--scenario spec.json] [--out merged.csv] [--point-delay-ms n]
//   run_sweep --worker <spool-dir> [--worker-name <name>]
//             [--scenario spec.json] [--point-delay-ms <n>]
//   run_sweep --status <journal-or-spool-dir> [--inputs more...] [--json]
//   run_sweep --list-architectures
//
// The fleet modes implement the work-stealing sweep fabric (see
// run/coordinator.hpp): --coordinator drives leases over a spool directory
// and merges the worker journals when every point is committed;
// --workers N forks N local worker processes (default EFFICSENSE_WORKERS;
// 0 means workers are launched elsewhere, e.g. other hosts on a shared
// filesystem); --worker serves leases until the coordinator writes
// done.json. The merged results are bitwise-identical (RESULT_DIGEST) to a
// serial --journal run of the same scenario.
//
// --status renders the telemetry report for an existing journal (same
// machinery as the sweep_status tool; see run/status_report.hpp). A live
// run also writes a status.json heartbeat next to the journal — see the
// EFFICSENSE_STATUS / EFFICSENSE_STATUS_INTERVAL knobs in run/telemetry.hpp.
//
// Sharding comes from EFFICSENSE_SHARD=i/N; dataset scale from
// EFFICSENSE_SEGMENTS (overriding the spec's "segments") and worker threads
// from EFFICSENSE_THREADS, exactly as in the Study sweeps. A 3-shard run
// merged with --merge is bitwise-identical (same RESULT_DIGEST, same CSV
// bytes) to an unsharded run — CI asserts exactly that, plus that a
// --scenario run of the checked-in smoke spec digests identically to the
// built-in spec.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "arch/architecture.hpp"
#include "arch/scenario.hpp"
#include "core/evaluator.hpp"
#include "cs/solver.hpp"
#include "core/sweep.hpp"
#include "obs/obs.hpp"
#include "run/coordinator.hpp"
#include "run/durable.hpp"
#include "run/scenario.hpp"
#include "run/status_report.hpp"
#include "run/worker.hpp"
#include "util/cache.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

using namespace efficsense;
using namespace efficsense::core;

namespace {

void usage() {
  std::cerr
      << "usage: run_sweep --journal <path> [--scenario <spec.json>]\n"
         "                 [--out <csv>] [--timeout <s>] [--point-delay-ms <n>]\n"
         "       run_sweep --merge <out.jsonl> --inputs <j1> <j2> ...\n"
         "                 [--scenario <spec.json>] [--out <csv>]\n"
         "       run_sweep --coordinator <spool-dir> [--workers <N>]\n"
         "                 [--lease-ttl <s>] [--scenario <spec.json>]\n"
         "                 [--out <csv>] [--point-delay-ms <n>]\n"
         "       run_sweep --worker <spool-dir> [--worker-name <name>]\n"
         "                 [--scenario <spec.json>] [--point-delay-ms <n>]\n"
         "       run_sweep --status <journal-or-spool> [--inputs <more>...]"
         " [--json]\n"
         "       run_sweep --list-architectures\n"
         "       run_sweep --list-solvers\n";
}

/// The built-in scenario: the fixed CI space (both chain families, 12
/// points). Kept byte-for-byte in sync with examples/scenario_ci_smoke.json
/// so `--scenario` on the checked-in file reproduces the default run
/// exactly — CI asserts the RESULT_DIGESTs match.
constexpr const char* kCiSmokeSpec = R"({
  "name": "ci-smoke",
  "architecture": "auto",
  "axes": [
    {"name": "lna_noise_vrms", "values": [2e-6, 6e-6, 20e-6]},
    {"name": "adc_bits", "values": [6, 8]},
    {"name": "cs_m", "values": [0, 75]}
  ],
  "eval": {"residual_tol": 0.02},
  "sweep": {"segments": 2, "train_segments": 12, "seed": 2022}
})";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void report(const run::RunOutcome& outcome, const std::string& csv,
            const std::string& out_csv) {
  std::cout << "points_resumed=" << outcome.points_resumed
            << " points_evaluated=" << outcome.points_evaluated
            << " points_retried=" << outcome.points_retried
            << " points_quarantined=" << outcome.quarantined.size() << "\n";
  for (const auto& [name, value] :
       obs::Registry::instance().counters_with_prefix("run/")) {
    std::cout << "counter " << name << "=" << value << "\n";
  }
  std::cout << "RESULT_POINTS=" << outcome.results.size() << "\n";
  std::cout << "RESULT_DIGEST=" << hex16(fnv1a(csv)) << "\n";
  if (!out_csv.empty()) {
    std::ofstream out(out_csv, std::ios::trunc | std::ios::binary);
    out << csv;
    std::cout << "[wrote " << out_csv << "]\n";
  }
}

void list_architectures() {
  for (const arch::Architecture* a : arch::ArchRegistry::instance().list()) {
    std::printf("%-12s %s\n", a->id().c_str(), a->description().c_str());
  }
}

void list_solvers() {
  for (const cs::SparseSolver* s : cs::SolverRegistry::instance().list()) {
    std::printf("%-18s code=%d  %s\n", s->id().c_str(),
                cs::SolverRegistry::instance().code_of(s->id()),
                s->description().c_str());
  }
}

/// Fork+exec one local worker process (re-invoking this binary with
/// --worker). fork without exec is unsafe once threads exist, so the
/// coordinator calls this before building its scenario context.
pid_t spawn_worker(const char* self, const std::string& spool,
                   const std::string& name, const std::string& scenario_path,
                   int point_delay_ms) {
  std::vector<std::string> args = {self, "--worker", spool, "--worker-name",
                                   name};
  if (!scenario_path.empty()) {
    args.push_back("--scenario");
    args.push_back(scenario_path);
  }
  if (point_delay_ms > 0) {
    args.push_back("--point-delay-ms");
    args.push_back(std::to_string(point_delay_ms));
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<char*> argvv;
    argvv.reserve(args.size() + 1);
    for (auto& a : args) argvv.push_back(const_cast<char*>(a.c_str()));
    argvv.push_back(nullptr);
    ::execv(self, argvv.data());
    std::perror("run_sweep: execv worker");
    _exit(127);
  }
  EFF_REQUIRE(pid > 0, "fork failed launching worker " + name);
  std::cout << "[worker " << name << " pid " << pid << "]\n";
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal, merge_out, out_csv, scenario_path, status_journal;
  std::string coordinator_spool, worker_spool, worker_name;
  std::vector<std::string> inputs;
  double timeout_s = 0.0;
  double lease_ttl_s = 0.0;
  int point_delay_ms = 0;
  long long workers = -1;  // -1 = EFFICSENSE_WORKERS
  bool merge_mode = false;
  bool json_report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--journal") {
      journal = next();
    } else if (arg == "--merge") {
      merge_mode = true;
      merge_out = next();
    } else if (arg == "--inputs") {
      while (i + 1 < argc && argv[i + 1][0] != '-') inputs.push_back(argv[++i]);
    } else if (arg == "--scenario") {
      scenario_path = next();
    } else if (arg == "--status") {
      status_journal = next();
    } else if (arg == "--json") {
      json_report = true;
    } else if (arg == "--list-architectures") {
      list_architectures();
      return 0;
    } else if (arg == "--list-solvers") {
      list_solvers();
      return 0;
    } else if (arg == "--out") {
      out_csv = next();
    } else if (arg == "--timeout") {
      timeout_s = std::stod(next());
    } else if (arg == "--point-delay-ms") {
      point_delay_ms = std::stoi(next());
    } else if (arg == "--coordinator") {
      coordinator_spool = next();
    } else if (arg == "--worker") {
      worker_spool = next();
    } else if (arg == "--worker-name") {
      worker_name = next();
    } else if (arg == "--workers") {
      workers = std::stoll(next());
    } else if (arg == "--lease-ttl") {
      lease_ttl_s = std::stod(next());
    } else {
      usage();
      return 2;
    }
  }

  try {
    if (!status_journal.empty()) {
      std::vector<std::string> journals;
      std::string status_path;
      for (const auto& arg : std::vector<std::string>{status_journal}) {
        if (std::filesystem::is_directory(arg)) {
          auto spool = run::discover_spool(arg);
          journals.insert(journals.end(), spool.journals.begin(),
                          spool.journals.end());
          status_path = spool.status_path;
        } else {
          journals.push_back(arg);
        }
      }
      journals.insert(journals.end(), inputs.begin(), inputs.end());
      const auto status = run::build_report(journals, status_path);
      std::cout << (json_report ? run::render_json(status)
                                : run::render_text(status));
      return status.stale || !status.quarantined_points.empty() ? 4 : 0;
    }

    const auto spec = scenario_path.empty()
                          ? arch::scenario_from_json(kCiSmokeSpec)
                          : arch::scenario_from_file(scenario_path);

    if (!coordinator_spool.empty()) {
      // Clear stale control state, then fork the local fleet before any
      // thread exists in this process (scenario building spins threads).
      run::Coordinator::reset_spool(coordinator_spool);
      const long long fleet_size =
          workers >= 0 ? workers
                       : static_cast<long long>(run::workers_from_env());
      std::vector<pid_t> pids;
      for (long long k = 0; k < fleet_size; ++k) {
        pids.push_back(spawn_worker(argv[0], coordinator_spool,
                                    "w" + std::to_string(k), scenario_path,
                                    point_delay_ms));
      }

      const auto context = run::make_scenario_context(
          spec, nullptr,
          [](const std::string& line) { std::cout << "[" << line << "]\n"; });
      run::CoordinatorOptions options;
      options.spool_dir = coordinator_spool;
      options.config_digest = context->evaluator->config_digest();
      options.lease_ttl_s = lease_ttl_s;
      options.stall_timeout_s = 600.0;  // CI hang guard
      std::cout << "[scenario: "
                << (context->spec.name.empty() ? "(unnamed)"
                                               : context->spec.name)
                << ", architecture " << context->spec.architecture << "]\n";
      std::cout << "[fleet: " << context->spec.space.size()
                << " points, spool " << coordinator_spool << ", "
                << fleet_size << " local workers]\n";

      run::Coordinator coordinator(context->base, context->spec.space,
                                   options);
      const auto outcome =
          coordinator.run([&](std::size_t done, std::size_t total) {
            std::cout << "[progress " << done << "/" << total << "]"
                      << std::endl;  // flushed: fleet-smoke greps it
          });
      for (const pid_t pid : pids) {
        int wstatus = 0;
        ::waitpid(pid, &wstatus, 0);
      }
      std::cout << "fleet workers_seen=" << outcome.stats.workers_seen
                << " leases_granted=" << outcome.stats.leases_granted
                << " leases_stolen=" << outcome.stats.leases_stolen
                << " leases_expired=" << outcome.stats.leases_expired
                << " leases_reassigned=" << outcome.stats.leases_reassigned
                << " duplicate_points=" << outcome.stats.duplicate_points
                << "\n";
      report(outcome.merged, sweep_to_csv(outcome.merged.results), out_csv);
      return outcome.merged.quarantined.empty() ? 0 : 3;
    }

    if (!worker_spool.empty()) {
      const auto threads = static_cast<std::size_t>(
          std::max<std::int64_t>(0, env_int("EFFICSENSE_THREADS", 0)));
      std::unique_ptr<ThreadPool> pool;
      if (threads != 1) {
        pool = std::make_unique<ThreadPool>(threads);
        if (pool->size() <= 1) pool.reset();
      }
      const auto context = run::make_scenario_context(
          spec, pool.get(),
          [](const std::string& line) { std::cout << "[" << line << "]\n"; });
      run::WorkerOptions options;
      options.spool_dir = worker_spool;
      options.name = worker_name;
      options.config_digest = context->evaluator->config_digest();
      run::DurableSweeper::EvalFn eval = [&](const power::DesignParams& d) {
        if (point_delay_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(point_delay_ms));
        }
        return context->evaluator->evaluate(d);
      };
      run::Worker worker(std::move(eval), context->base, context->spec.space,
                         options);
      std::cout << "[worker " << worker.name() << " joining spool "
                << worker_spool << "]\n";
      const auto outcome = worker.run();
      std::cout << "worker_evaluated=" << outcome.points_evaluated
                << " worker_skipped=" << outcome.points_skipped
                << " worker_quarantined=" << outcome.points_quarantined
                << " worker_leases=" << outcome.leases_completed << "\n";
      for (const auto& [name, value] :
           obs::Registry::instance().counters_with_prefix("run/")) {
        std::cout << "counter " << name << "=" << value << "\n";
      }
      return outcome.points_quarantined == 0 ? 0 : 3;
    }

    if (merge_mode) {
      if (inputs.empty()) {
        usage();
        return 2;
      }
      const auto outcome =
          run::merge_journals(inputs, spec.base_design(), merge_out);
      report(outcome, sweep_to_csv(outcome.results), out_csv);
      return outcome.quarantined.empty() ? 0 : 3;
    }

    if (journal.empty()) {
      usage();
      return 2;
    }

    const auto threads = static_cast<std::size_t>(
        std::max<std::int64_t>(0, env_int("EFFICSENSE_THREADS", 0)));
    std::unique_ptr<ThreadPool> pool;
    if (threads != 1) {
      pool = std::make_unique<ThreadPool>(threads);
      if (pool->size() <= 1) pool.reset();
    }

    const auto context = run::make_scenario_context(
        spec, pool.get(),
        [](const std::string& line) { std::cout << "[" << line << "]\n"; });

    run::RunOptions options;
    options.journal_path = journal;
    options.shard = run::shard_from_env();
    options.point_timeout_s = timeout_s;
    options.config_digest = context->evaluator->config_digest();

    std::cout << "[scenario: "
              << (context->spec.name.empty() ? "(unnamed)" : context->spec.name)
              << ", architecture " << context->spec.architecture << "]\n";
    std::cout << "[sweep: " << context->spec.space.size() << " points, shard "
              << options.shard.to_string() << ", " << context->dataset.size()
              << " segments]\n";

    // The delay wrapper (CI uses it to widen the SIGKILL window) must not
    // enter the digest: it cannot change any result.
    run::DurableSweeper::EvalFn eval = [&](const power::DesignParams& d) {
      if (point_delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(point_delay_ms));
      }
      return context->evaluator->evaluate(d);
    };
    const run::DurableSweeper sweeper(std::move(eval), options);
    const auto outcome = sweeper.run(
        context->base, context->spec.space, pool.get(),
        [&](std::size_t done, std::size_t total) {
          std::cout << "[progress " << done << "/" << total << "]"
                    << std::endl;  // flushed: the kill-and-resume job greps it
        });
    report(outcome, sweep_to_csv(outcome.results), out_csv);
    return outcome.quarantined.empty() ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "run_sweep: " << e.what() << "\n";
    return 1;
  }
}
