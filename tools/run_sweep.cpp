// run_sweep — the durable sweep driver the CI harness kills, resumes,
// shards and merges. It evaluates a small fixed design space (baseline and
// passive-CS chains) through run::DurableSweeper, journaling every point,
// and prints machine-checkable lines:
//
//   points_resumed=... points_evaluated=... points_retried=... points_quarantined=...
//   RESULT_DIGEST=<fnv1a64 of the result CSV>
//
// Modes:
//   run_sweep --journal results/ci/sweep.jsonl [--out sweep.csv]
//             [--timeout <s>] [--point-delay-ms <n>]
//   run_sweep --merge merged.jsonl --inputs s0.jsonl s1.jsonl s2.jsonl
//             [--out merged.csv]
//
// Sharding comes from EFFICSENSE_SHARD=i/N; dataset scale from
// EFFICSENSE_SEGMENTS (default 2) and worker threads from
// EFFICSENSE_THREADS, exactly as in the Study sweeps. A 3-shard run merged
// with --merge is bitwise-identical (same RESULT_DIGEST, same CSV bytes)
// to an unsharded run — CI asserts exactly that.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "classify/detector.hpp"
#include "core/design_space.hpp"
#include "core/evaluator.hpp"
#include "core/sweep.hpp"
#include "eeg/dataset.hpp"
#include "obs/obs.hpp"
#include "run/durable.hpp"
#include "util/cache.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace efficsense;
using namespace efficsense::core;

namespace {

void usage() {
  std::cerr
      << "usage: run_sweep --journal <path> [--out <csv>] [--timeout <s>]\n"
         "                 [--point-delay-ms <n>]\n"
         "       run_sweep --merge <out.jsonl> --inputs <j1> <j2> ...\n"
         "                 [--out <csv>]\n";
}

/// The fixed CI space: both chain families, 12 points.
DesignSpace ci_space() {
  DesignSpace space;
  space.add_axis("lna_noise_vrms", {2e-6, 6e-6, 20e-6})
      .add_axis("adc_bits", {6, 8})
      .add_axis("cs_m", {0, 75});  // 0 = baseline chain, 75 = passive CS
  return space;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void report(const run::RunOutcome& outcome, const std::string& csv,
            const std::string& out_csv) {
  std::cout << "points_resumed=" << outcome.points_resumed
            << " points_evaluated=" << outcome.points_evaluated
            << " points_retried=" << outcome.points_retried
            << " points_quarantined=" << outcome.quarantined.size() << "\n";
  for (const auto& [name, value] :
       obs::Registry::instance().counters_with_prefix("run/")) {
    std::cout << "counter " << name << "=" << value << "\n";
  }
  std::cout << "RESULT_POINTS=" << outcome.results.size() << "\n";
  std::cout << "RESULT_DIGEST=" << hex16(fnv1a(csv)) << "\n";
  if (!out_csv.empty()) {
    std::ofstream out(out_csv, std::ios::trunc | std::ios::binary);
    out << csv;
    std::cout << "[wrote " << out_csv << "]\n";
  }
}

/// Train (or load from the repo file cache) the small CI detector.
classify::EpilepsyDetector ci_detector(const eeg::Generator& gen,
                                       ThreadPool* pool) {
  classify::DetectorConfig cfg;
  power::DesignParams probe;
  cfg.fs_hz = probe.f_sample_hz();
  std::ostringstream key;
  key.precision(17);
  key << "run_sweep/detector/v1;train=6x6@" << derive_seed(2022, 0xDE7)
      << ";fs=" << cfg.fs_hz << ";hidden=" << cfg.hidden_units
      << ";aug_seed=" << cfg.augment.seed << ";train_seed=" << cfg.train.seed;
  const auto cache = default_cache();
  if (const auto blob = cache.load(key.str())) {
    std::cout << "[detector: cache hit]\n";
    return classify::EpilepsyDetector::from_blob(*blob);
  }
  std::cout << "[detector: training]\n";
  auto detector = classify::EpilepsyDetector::train(
      eeg::make_dataset(gen, 6, 6, derive_seed(2022, 0xDE7), pool), cfg);
  cache.store(key.str(), detector.to_blob());
  return detector;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal, merge_out, out_csv;
  std::vector<std::string> inputs;
  double timeout_s = 0.0;
  int point_delay_ms = 0;
  bool merge_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--journal") {
      journal = next();
    } else if (arg == "--merge") {
      merge_mode = true;
      merge_out = next();
    } else if (arg == "--inputs") {
      while (i + 1 < argc && argv[i + 1][0] != '-') inputs.push_back(argv[++i]);
    } else if (arg == "--out") {
      out_csv = next();
    } else if (arg == "--timeout") {
      timeout_s = std::stod(next());
    } else if (arg == "--point-delay-ms") {
      point_delay_ms = std::stoi(next());
    } else {
      usage();
      return 2;
    }
  }

  const power::DesignParams base;  // Table III defaults; cs_m rides the axis

  try {
    if (merge_mode) {
      if (inputs.empty()) {
        usage();
        return 2;
      }
      const auto outcome = run::merge_journals(inputs, base, merge_out);
      report(outcome, sweep_to_csv(outcome.results), out_csv);
      return outcome.quarantined.empty() ? 0 : 3;
    }

    if (journal.empty()) {
      usage();
      return 2;
    }

    const auto threads = static_cast<std::size_t>(
        std::max<std::int64_t>(0, env_int("EFFICSENSE_THREADS", 0)));
    std::unique_ptr<ThreadPool> pool;
    if (threads != 1) {
      pool = std::make_unique<ThreadPool>(threads);
      if (pool->size() <= 1) pool.reset();
    }

    const auto n =
        static_cast<std::size_t>(env_int("EFFICSENSE_SEGMENTS", 2));
    const eeg::Generator gen{eeg::GeneratorConfig{}};
    const auto dataset = eeg::make_dataset(gen, n / 2, n - n / 2,
                                           derive_seed(2022, 0xEA1), pool.get());
    const auto detector = ci_detector(gen, pool.get());

    EvalOptions opt;
    opt.recon.residual_tol = 0.02;
    const Evaluator evaluator(power::TechnologyParams{}, &dataset, &detector,
                              opt);

    run::RunOptions options;
    options.journal_path = journal;
    options.shard = run::shard_from_env();
    options.point_timeout_s = timeout_s;
    options.config_digest = evaluator.config_digest();

    const auto space = ci_space();
    std::cout << "[sweep: " << space.size() << " points, shard "
              << options.shard.to_string() << ", " << dataset.size()
              << " segments]\n";

    // The delay wrapper (CI uses it to widen the SIGKILL window) must not
    // enter the digest: it cannot change any result.
    run::DurableSweeper::EvalFn eval = [&](const power::DesignParams& d) {
      if (point_delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(point_delay_ms));
      }
      return evaluator.evaluate(d);
    };
    const run::DurableSweeper sweeper(std::move(eval), options);
    const auto outcome = sweeper.run(
        base, space, pool.get(), [&](std::size_t done, std::size_t total) {
          std::cout << "[progress " << done << "/" << total << "]"
                    << std::endl;  // flushed: the kill-and-resume job greps it
        });
    report(outcome, sweep_to_csv(outcome.results), out_csv);
    return outcome.quarantined.empty() ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "run_sweep: " << e.what() << "\n";
    return 1;
  }
}
