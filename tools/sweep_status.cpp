// sweep_status — live / post-mortem reporting over durable-sweep journals.
// Reads one or more shard journals (plus their status.json heartbeats when
// present) and renders the run::build_report view: progress bar, heartbeat
// freshness, throughput trend, per-stage latency breakdown, slowest and
// quarantined points.
//
//   sweep_status <journal.jsonl | spool-dir> [more-journals...]
//                [--status <status.json>] [--json]
//
// With several journals the report aggregates the shards (the same
// journals run_sweep --merge accepts). A directory argument is expanded by
// run::discover_spool: a fleet spool contributes its workers/*.jsonl
// journals and the coordinator.status.json heartbeat, any other directory
// contributes every *.jsonl inside it. --status overrides the per-journal
// "<journal>.status.json" heartbeat location; --json emits the stable
// machine-readable document (schema_version 1) instead of the terminal
// view. Exit code: 0 on a healthy/complete run, 4 when the run looks dead
// (stale heartbeat without completion) or the journal has quarantined
// points — so CI can gate on it directly.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "run/status_report.hpp"

namespace {

void usage() {
  std::cerr << "usage: sweep_status <journal.jsonl | spool-dir> "
               "[more-journals...]\n"
               "                    [--status <status.json>] [--json]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> journals;
  std::string status_path;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--status") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      status_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      journals.push_back(arg);
    }
  }
  if (journals.empty()) {
    usage();
    return 2;
  }

  try {
    // Expand directory arguments (fleet spools or plain journal dirs).
    std::vector<std::string> expanded;
    for (const auto& arg : journals) {
      if (std::filesystem::is_directory(arg)) {
        auto spool = efficsense::run::discover_spool(arg);
        expanded.insert(expanded.end(), spool.journals.begin(),
                        spool.journals.end());
        if (status_path.empty()) status_path = spool.status_path;
      } else {
        expanded.push_back(arg);
      }
    }
    const auto report = efficsense::run::build_report(expanded, status_path);
    std::cout << (json ? efficsense::run::render_json(report)
                       : efficsense::run::render_text(report));
    return (report.stale || !report.quarantined_points.empty()) ? 4 : 0;
  } catch (const std::exception& e) {
    std::cerr << "sweep_status: " << e.what() << "\n";
    return 1;
  }
}
