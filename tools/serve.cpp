// serve — the streaming gateway daemon (DESIGN.md §14). Loads one or more
// scenario specs (frame scenario_id = position on the command line), binds a
// unix-domain and/or loopback TCP listener, and serves framed epoch decode
// requests through the cached Batch-OMP path and each scenario's trained
// detector. SIGTERM/SIGINT trigger a graceful drain: intake stops (new data
// frames get the retryable kDraining rejection), every admitted frame is
// answered, responses flush, a final complete=true heartbeat lands, and the
// process exits 0 — CI's serve-smoke lane asserts exactly that sequence.
//
//   serve --uds <socket-path> [--tcp <port>] [--scenario <spec.json>]...
//         [--status <path>] [--threads <n>] [--queue <n>] [--delay-ms <n>]
//
// Defaults come from ServerConfig overlaid with the env knobs
// (EFFICSENSE_SERVE_THREADS, EFFICSENSE_SERVE_QUEUE,
// EFFICSENSE_SERVE_SESSION_BUDGET, EFFICSENSE_SERVE_BUDGET,
// EFFICSENSE_SERVE_MAX_SESSIONS, EFFICSENSE_SERVE_STATUS,
// EFFICSENSE_STATUS_INTERVAL); explicit flags win over both. With no
// --scenario, the built-in serve smoke spec (examples/
// scenario_serve_smoke.json) is loaded as scenario 0.
//
// After the listeners are live the daemon prints a single machine-readable
// line ("serve: ready ...") so a harness can wait for it before connecting.

#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "arch/scenario.hpp"
#include "run/scenario.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

using namespace efficsense;

namespace {

void usage() {
  std::cerr
      << "usage: serve --uds <socket-path> [--tcp <port>]\n"
         "             [--scenario <spec.json>]... [--status <path>]\n"
         "             [--threads <n>] [--queue <n>] [--delay-ms <n>]\n"
         "At least one of --uds/--tcp is required. --tcp 0 picks an\n"
         "ephemeral port (printed on the ready line).\n";
}

/// Kept in sync with examples/scenario_serve_smoke.json (same spirit as
/// run_sweep's built-in CI spec): a small spec whose detector trains in
/// seconds and caches in .cache/.
constexpr const char* kServeSmokeSpec = R"({
  "name": "serve-smoke",
  "architecture": "auto",
  "axes": [
    {"name": "cs_m", "values": [0, 75]}
  ],
  "eval": {"residual_tol": 0.02},
  "sweep": {"segments": 2, "train_segments": 4, "seed": 919}
})";

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  std::string uds_path;
  int tcp_port = -1;
  std::vector<std::string> scenario_files;
  serve::ServerConfig config = serve::server_config_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--uds") {
      uds_path = next();
    } else if (arg == "--tcp") {
      tcp_port = std::atoi(next());
    } else if (arg == "--scenario") {
      scenario_files.push_back(next());
    } else if (arg == "--status") {
      config.status_path = next();
    } else if (arg == "--threads") {
      config.decode_threads = std::size_t(std::max(1, std::atoi(next())));
    } else if (arg == "--queue") {
      config.queue_capacity = std::size_t(std::max(1, std::atoi(next())));
    } else if (arg == "--delay-ms") {
      config.decode_delay_ms = std::atoi(next());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "serve: unknown argument " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (uds_path.empty() && tcp_port < 0) {
    usage();
    return 2;
  }
  config.uds_path = uds_path;
  config.tcp_port = tcp_port;

  try {
    // Bring the scenarios to life (dataset synthesis + detector training or
    // cache load) before binding the listeners: "ready" means servable.
    std::vector<std::unique_ptr<run::ScenarioContext>> contexts;
    std::vector<const run::ScenarioContext*> views;
    const auto log = [](const std::string& line) {
      std::cerr << "serve: " << line << "\n";
    };
    if (scenario_files.empty()) {
      std::cerr << "serve: no --scenario given; using built-in smoke spec\n";
      contexts.push_back(run::make_scenario_context(
          arch::scenario_from_json(kServeSmokeSpec), nullptr, log));
    }
    for (const auto& file : scenario_files) {
      contexts.push_back(run::make_scenario_context(
          arch::scenario_from_file(file), nullptr, log));
    }
    for (const auto& c : contexts) views.push_back(c.get());
    serve::DecodePipeline pipeline(std::move(views));

    serve::Server server(&pipeline, config);
    server.start();

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    std::cout << "serve: ready scenarios=" << contexts.size();
    if (!uds_path.empty()) std::cout << " uds=" << uds_path;
    if (tcp_port >= 0) std::cout << " tcp=" << server.bound_tcp_port();
    std::cout << " threads=" << server.config().decode_threads
              << " status=" << server.config().status_path << std::endl;

    // Park until a drain signal arrives; sigsuspend-free portable wait.
    sigset_t empty;
    sigemptyset(&empty);
    while (g_signal == 0) sigsuspend(&empty);

    std::cerr << "serve: signal " << int(g_signal) << ", draining\n";
    server.begin_drain();
    server.stop();

    const auto stats = server.stats();
    std::cout << "serve: drained frames_in=" << stats.frames_in
              << " accepted=" << stats.frames_accepted
              << " rejected=" << stats.frames_rejected
              << " detections=" << stats.detections_out
              << " write_failures=" << stats.write_failures << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "serve: fatal: " << e.what() << "\n";
    return 1;
  }
}
